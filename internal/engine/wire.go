package engine

// Plan serialization for the shard wire protocol. A coordinating engine
// ships compiled plans to remote shard backends, so every canonical plan
// node, expression and event predicate gets an explicit tagged wire form
// (gob-encoded; no interface registration, no closures on the wire).
//
// Opaque scans — MatchFunc closures and expression types this package does
// not know — are exactly the plans whose Key() is per-compilation
// (Scan.opaqueID != 0); they cannot be represented on the wire and encode
// to a clear error instead of a silently wrong query. This is the same
// classification the plan cache uses, so "cacheable" and "shippable"
// can never drift apart.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"pastas/internal/model"
	"pastas/internal/query"
)

// Wire node kind tags. Strings rather than iota so a reordered constant
// block can never silently re-interpret a peer's payload.
const (
	wireAll   = "all"
	wireNone  = "none"
	wireIndex = "index"
	wireScan  = "scan"
	wireAnd   = "and"
	wireOr    = "or"
	wireNot   = "not"

	wireExprTrue = "true"
	wireExprAnd  = "and"
	wireExprOr   = "or"
	wireExprNot  = "not"
	wireExprHas  = "has"
	wireExprSeq  = "seq"
	wireExprDur  = "during"
	wireExprAge  = "age"
	wireExprSex  = "sex"

	wirePredCode   = "code"
	wirePredType   = "type"
	wirePredSource = "source"
	wirePredKind   = "kind"
	wirePredValue  = "value"
	wirePredPeriod = "period"
	wirePredText   = "text"
	wirePredAll    = "allof"
	wirePredAny    = "anyof"
	wirePredNot    = "notev"
)

// wirePlan is the tagged wire form of a Plan node.
type wirePlan struct {
	Kind string
	Kids []wirePlan // and, or, not

	// index leaves
	Op      int
	Systems []string
	Pattern string
	Type    model.Type
	Source  model.Source

	// scan leaves
	Expr *wireExpr
}

// wireExpr is the tagged wire form of a query.Expr.
type wireExpr struct {
	Kind string
	Kids []wireExpr // and, or, not

	Pred     *wirePred // has
	MinCount int

	Steps []wireStep // seq

	Interval *wirePred // during
	Event    *wirePred

	Lo, Hi int // age
	At     model.Time

	Sex model.Sex
}

// wireStep is one sequence step.
type wireStep struct {
	Pred           wirePred
	MinGap, MaxGap model.Time
}

// wirePred is the tagged wire form of a query.EventPred.
type wirePred struct {
	Kind string
	Kids []wirePred // allof, anyof, notev

	System, Pattern string // code; Pattern doubles for text
	Type            model.Type
	Source          model.Source
	EntryKind       model.Kind
	Lo, Hi          float64 // value
	Period          model.Period
}

// EncodePlan serializes a plan for a remote shard backend. Plans holding
// opaque scans (closures, unknown expression types) cannot cross a
// process boundary and return an error naming the offending node.
func EncodePlan(p Plan) ([]byte, error) {
	w, err := planToWire(p)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("engine: encode plan: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePlan reconstructs a plan serialized by EncodePlan. Code and text
// patterns are re-validated during reconstruction, so a hostile payload
// errors instead of executing with a nil regexp.
func DecodePlan(data []byte) (Plan, error) {
	var w wirePlan
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("engine: decode plan: %w", err)
	}
	return planFromWire(w)
}

// EncodeExpr serializes a query expression in the same tagged wire form
// plans use. The store's cohort segment persists expressions through this
// codec without importing the query package's types: the bytes are opaque
// to the snapshot format and re-validated on decode. Opaque expressions
// (closures, unknown types) error like EncodePlan does.
func EncodeExpr(e query.Expr) ([]byte, error) {
	w, err := exprToWire(e)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("engine: encode expression: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeExpr reconstructs an expression serialized by EncodeExpr,
// re-validating patterns like DecodePlan — a hostile payload errors, it
// never produces an expression that panics at evaluation time.
func DecodeExpr(data []byte) (query.Expr, error) {
	var w wireExpr
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("engine: decode expression: %w", err)
	}
	return exprFromWire(w)
}

func planToWire(p Plan) (wirePlan, error) {
	switch n := p.(type) {
	case All:
		return wirePlan{Kind: wireAll}, nil
	case None:
		return wirePlan{Kind: wireNone}, nil
	case IndexScan:
		return wirePlan{
			Kind: wireIndex, Op: int(n.Op), Systems: n.Systems,
			Pattern: n.Pattern, Type: n.Type, Source: n.Source,
		}, nil
	case Scan:
		if n.opaqueID != 0 {
			return wirePlan{}, fmt.Errorf("engine: plan %s is opaque (closure or unknown expression type) and cannot be sent to a remote shard", n)
		}
		e, err := exprToWire(n.Expr)
		if err != nil {
			return wirePlan{}, err
		}
		return wirePlan{Kind: wireScan, Expr: &e}, nil
	case And:
		kids, err := plansToWire(n.Children)
		return wirePlan{Kind: wireAnd, Kids: kids}, err
	case Or:
		kids, err := plansToWire(n.Children)
		return wirePlan{Kind: wireOr, Kids: kids}, err
	case Not:
		kid, err := planToWire(n.Child)
		return wirePlan{Kind: wireNot, Kids: []wirePlan{kid}}, err
	default:
		return wirePlan{}, fmt.Errorf("engine: plan node %T has no wire form", p)
	}
}

func plansToWire(ps []Plan) ([]wirePlan, error) {
	out := make([]wirePlan, len(ps))
	for i, p := range ps {
		w, err := planToWire(p)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func planFromWire(w wirePlan) (Plan, error) {
	switch w.Kind {
	case wireAll:
		return All{}, nil
	case wireNone:
		return None{}, nil
	case wireIndex:
		if op := IndexOp(w.Op); op != OpCode && op != OpType && op != OpSource {
			return nil, fmt.Errorf("engine: decode plan: unknown index op %d", w.Op)
		}
		p := IndexScan{Op: IndexOp(w.Op), Systems: w.Systems, Pattern: w.Pattern, Type: w.Type, Source: w.Source}
		if p.Op == OpCode {
			if err := checkPattern(p.Pattern); err != nil {
				return nil, err
			}
		}
		return p, nil
	case wireScan:
		if w.Expr == nil {
			return nil, fmt.Errorf("engine: decode plan: scan without expression")
		}
		e, err := exprFromWire(*w.Expr)
		if err != nil {
			return nil, err
		}
		return newScan(e), nil
	case wireAnd, wireOr:
		kids := make([]Plan, len(w.Kids))
		for i, k := range w.Kids {
			p, err := planFromWire(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		if w.Kind == wireAnd {
			return And{Children: kids}, nil
		}
		return Or{Children: kids}, nil
	case wireNot:
		if len(w.Kids) != 1 {
			return nil, fmt.Errorf("engine: decode plan: not with %d children", len(w.Kids))
		}
		kid, err := planFromWire(w.Kids[0])
		if err != nil {
			return nil, err
		}
		return Not{Child: kid}, nil
	default:
		return nil, fmt.Errorf("engine: decode plan: unknown node kind %q", w.Kind)
	}
}

func exprToWire(e query.Expr) (wireExpr, error) {
	switch q := e.(type) {
	case query.TrueExpr:
		return wireExpr{Kind: wireExprTrue}, nil
	case query.And:
		kids, err := exprsToWire([]query.Expr(q))
		return wireExpr{Kind: wireExprAnd, Kids: kids}, err
	case query.Or:
		kids, err := exprsToWire([]query.Expr(q))
		return wireExpr{Kind: wireExprOr, Kids: kids}, err
	case query.Not:
		kid, err := exprToWire(q.E)
		return wireExpr{Kind: wireExprNot, Kids: []wireExpr{kid}}, err
	case query.Has:
		p, err := predToWire(q.Pred)
		if err != nil {
			return wireExpr{}, err
		}
		return wireExpr{Kind: wireExprHas, Pred: &p, MinCount: q.MinCount}, nil
	case query.Sequence:
		steps := make([]wireStep, len(q.Steps))
		for i, st := range q.Steps {
			p, err := predToWire(st.Pred)
			if err != nil {
				return wireExpr{}, err
			}
			steps[i] = wireStep{Pred: p, MinGap: st.MinGap, MaxGap: st.MaxGap}
		}
		return wireExpr{Kind: wireExprSeq, Steps: steps}, nil
	case query.During:
		iv, err := predToWire(q.Interval)
		if err != nil {
			return wireExpr{}, err
		}
		ev, err := predToWire(q.Event)
		if err != nil {
			return wireExpr{}, err
		}
		return wireExpr{Kind: wireExprDur, Interval: &iv, Event: &ev}, nil
	case query.AgeBetween:
		return wireExpr{Kind: wireExprAge, Lo: q.Lo, Hi: q.Hi, At: q.At}, nil
	case query.SexIs:
		return wireExpr{Kind: wireExprSex, Sex: model.Sex(q)}, nil
	default:
		return wireExpr{}, fmt.Errorf("engine: expression %T has no wire form", e)
	}
}

func exprsToWire(es []query.Expr) ([]wireExpr, error) {
	out := make([]wireExpr, len(es))
	for i, e := range es {
		w, err := exprToWire(e)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func exprFromWire(w wireExpr) (query.Expr, error) {
	switch w.Kind {
	case wireExprTrue:
		return query.TrueExpr{}, nil
	case wireExprAnd, wireExprOr:
		kids := make([]query.Expr, len(w.Kids))
		for i, k := range w.Kids {
			e, err := exprFromWire(k)
			if err != nil {
				return nil, err
			}
			kids[i] = e
		}
		if w.Kind == wireExprAnd {
			return query.And(kids), nil
		}
		return query.Or(kids), nil
	case wireExprNot:
		if len(w.Kids) != 1 {
			return nil, fmt.Errorf("engine: decode plan: not-expr with %d children", len(w.Kids))
		}
		kid, err := exprFromWire(w.Kids[0])
		if err != nil {
			return nil, err
		}
		return query.Not{E: kid}, nil
	case wireExprHas:
		if w.Pred == nil {
			return nil, fmt.Errorf("engine: decode plan: has without predicate")
		}
		p, err := predFromWire(*w.Pred)
		if err != nil {
			return nil, err
		}
		return query.Has{Pred: p, MinCount: w.MinCount}, nil
	case wireExprSeq:
		steps := make([]query.Step, len(w.Steps))
		for i, st := range w.Steps {
			p, err := predFromWire(st.Pred)
			if err != nil {
				return nil, err
			}
			steps[i] = query.Step{Pred: p, MinGap: st.MinGap, MaxGap: st.MaxGap}
		}
		return query.Sequence{Steps: steps}, nil
	case wireExprDur:
		if w.Interval == nil || w.Event == nil {
			return nil, fmt.Errorf("engine: decode plan: during without interval/event")
		}
		iv, err := predFromWire(*w.Interval)
		if err != nil {
			return nil, err
		}
		ev, err := predFromWire(*w.Event)
		if err != nil {
			return nil, err
		}
		return query.During{Interval: iv, Event: ev}, nil
	case wireExprAge:
		return query.AgeBetween{Lo: w.Lo, Hi: w.Hi, At: w.At}, nil
	case wireExprSex:
		return query.SexIs(w.Sex), nil
	default:
		return nil, fmt.Errorf("engine: decode plan: unknown expression kind %q", w.Kind)
	}
}

func predToWire(p query.EventPred) (wirePred, error) {
	switch q := p.(type) {
	case *query.Code:
		return wirePred{Kind: wirePredCode, System: q.System, Pattern: q.Pattern}, nil
	case query.TypeIs:
		return wirePred{Kind: wirePredType, Type: model.Type(q)}, nil
	case query.SourceIs:
		return wirePred{Kind: wirePredSource, Source: model.Source(q)}, nil
	case query.KindIs:
		return wirePred{Kind: wirePredKind, EntryKind: model.Kind(q)}, nil
	case query.ValueBetween:
		return wirePred{Kind: wirePredValue, Lo: q.Lo, Hi: q.Hi}, nil
	case query.InPeriod:
		return wirePred{Kind: wirePredPeriod, Period: model.Period(q)}, nil
	case *query.TextMatch:
		return wirePred{Kind: wirePredText, Pattern: q.Pattern}, nil
	case query.AllOf:
		kids, err := predsToWire([]query.EventPred(q))
		return wirePred{Kind: wirePredAll, Kids: kids}, err
	case query.AnyOf:
		kids, err := predsToWire([]query.EventPred(q))
		return wirePred{Kind: wirePredAny, Kids: kids}, err
	case query.NotEv:
		kid, err := predToWire(q.P)
		return wirePred{Kind: wirePredNot, Kids: []wirePred{kid}}, err
	default:
		return wirePred{}, fmt.Errorf("engine: event predicate %T has no wire form", p)
	}
}

func predsToWire(ps []query.EventPred) ([]wirePred, error) {
	out := make([]wirePred, len(ps))
	for i, p := range ps {
		w, err := predToWire(p)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func predFromWire(w wirePred) (query.EventPred, error) {
	switch w.Kind {
	case wirePredCode:
		return query.NewCode(w.System, w.Pattern)
	case wirePredType:
		return query.TypeIs(w.Type), nil
	case wirePredSource:
		return query.SourceIs(w.Source), nil
	case wirePredKind:
		return query.KindIs(w.EntryKind), nil
	case wirePredValue:
		return query.ValueBetween{Lo: w.Lo, Hi: w.Hi}, nil
	case wirePredPeriod:
		return query.InPeriod(w.Period), nil
	case wirePredText:
		return query.NewTextMatch(w.Pattern)
	case wirePredAll, wirePredAny:
		kids := make([]query.EventPred, len(w.Kids))
		for i, k := range w.Kids {
			p, err := predFromWire(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		if w.Kind == wirePredAll {
			return query.AllOf(kids), nil
		}
		return query.AnyOf(kids), nil
	case wirePredNot:
		if len(w.Kids) != 1 {
			return nil, fmt.Errorf("engine: decode plan: not-pred with %d children", len(w.Kids))
		}
		kid, err := predFromWire(w.Kids[0])
		if err != nil {
			return nil, err
		}
		return query.NotEv{P: kid}, nil
	default:
		return nil, fmt.Errorf("engine: decode plan: unknown predicate kind %q", w.Kind)
	}
}
