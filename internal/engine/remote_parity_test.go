package engine

// The distributed semantics contract: for every parity query, a
// coordinator over remote shard servers (loopback TCP), a coordinator
// over in-process local backends, and the legacy reference interpreter
// return bit-identical cohorts — across shard counts {1, 4, 16} — and a
// dead shard server yields a clear error, never a partial cohort.

import (
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// trackingListener records accepted connections so a test can kill a
// shard server the way a crashed process would: listener and every live
// connection torn down at once.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// remoteFixture is a coordinator over shard servers for the parity
// population, plus the handles to sabotage them.
type remoteFixture struct {
	eng       *Engine
	listeners []*trackingListener
}

// startShardServers saves the parity collection as a snapshot with the
// given shard count and serves it from `servers` loopback shard servers,
// shards dealt round-robin. Returns a coordinating engine over all of
// them.
func startShardServers(t testing.TB, col *model.Collection, shards, servers int, opts RemoteOptions) *remoteFixture {
	t.Helper()
	path := filepath.Join(t.TempDir(), "parity.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := store.SaveSharded(f, col, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if servers > info.Shards {
		servers = info.Shards
	}
	assigned := make([][]int, servers)
	for id := 0; id < info.Shards; id++ {
		assigned[id%servers] = append(assigned[id%servers], id)
	}
	fix := &remoteFixture{}
	var backends []ShardBackend
	for _, ids := range assigned {
		srv, err := NewShardServer(path, ids, Options{Shards: 2, Workers: 2, CacheSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tl := &trackingListener{Listener: lis}
		fix.listeners = append(fix.listeners, tl)
		go srv.Serve(tl)
		bs, total, err := DialShards(lis.Addr().String(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if total != col.Len() {
			t.Fatalf("server reports %d total patients, snapshot has %d", total, col.Len())
		}
		backends = append(backends, bs...)
	}
	eng, err := NewFromBackends(backends, Options{Workers: 4, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	fix.eng = eng
	t.Cleanup(func() {
		eng.Close()
		for _, l := range fix.listeners {
			l.kill()
		}
	})
	return fix
}

// TestRemoteParity is the acceptance property: local fan-out, remote
// shard servers and query.EvalIndexed are bit-identical at shard counts
// {1, 4, 16}. Runs under -race in CI.
func TestRemoteParity(t *testing.T) {
	col, st, _ := parityEngines(t)
	for _, shards := range []int{1, 4, 16} {
		servers := 2
		fix := startShardServers(t, col, shards, servers, RemoteOptions{Timeout: 30 * time.Second})
		if got := fix.eng.Patients(); got != col.Len() {
			t.Fatalf("shards=%d: coordinator sees %d patients, want %d", shards, got, col.Len())
		}
		// Distributed engine over in-process local backends: the third
		// implementation of the same contract.
		var locals []ShardBackend
		for i, m := range New(st, Options{Shards: shards, Workers: 2}).BackendInfo() {
			locals = append(locals, NewLocalBackend(st.Slice(m.Offset, m.Offset+m.Patients), i))
		}
		localDist, err := NewFromBackends(locals, Options{Workers: 4, CacheSize: 32})
		if err != nil {
			t.Fatal(err)
		}

		r := rand.New(rand.NewSource(int64(1000 + shards)))
		exprs := []query.Expr{
			query.TrueExpr{},
			query.Not{E: query.TrueExpr{}},
			query.Has{Pred: query.MustCode("", "ZZZ99")},
			query.And{
				query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}},
				query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
			},
			query.Not{E: query.And{
				query.Has{Pred: query.SourceIs(model.SourceGP)},
				query.Not{E: query.Has{Pred: query.MustCode("", `A.*`), MinCount: 2}},
			}},
			query.During{Interval: query.TypeIs(model.TypeStay), Event: query.TypeIs(model.TypeDiagnosis)},
		}
		for i := 0; i < 25; i++ {
			exprs = append(exprs, randExpr(r, 1+r.Intn(3)))
		}
		for _, e := range exprs {
			want, err := query.EvalIndexed(st, e)
			if err != nil {
				t.Fatalf("EvalIndexed(%s): %v", e, err)
			}
			gotRemote, err := fix.eng.Execute(e)
			if err != nil {
				t.Fatalf("shards=%d: remote Execute(%s): %v", shards, e, err)
			}
			if !gotRemote.Equal(want) {
				t.Fatalf("shards=%d: remote diverges for %s: %d vs %d",
					shards, e, gotRemote.Count(), want.Count())
			}
			gotLocal, err := localDist.Execute(e)
			if err != nil {
				t.Fatalf("shards=%d: local-backend Execute(%s): %v", shards, e, err)
			}
			if !gotLocal.Equal(want) {
				t.Fatalf("shards=%d: local backends diverge for %s: %d vs %d",
					shards, e, gotLocal.Count(), want.Count())
			}
		}
		// IDs resolve across the wire in collection order.
		e := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
		wantIDs, err := New(st, Options{Shards: shards}).Select(e)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, err := fix.eng.Select(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("shards=%d: %d remote IDs, want %d", shards, len(gotIDs), len(wantIDs))
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("shards=%d: ID %d is %v, want %v", shards, i, gotIDs[i], wantIDs[i])
			}
		}
	}
}

// TestRemoteFailureInjection: killing one of the shard servers turns
// every evaluation into a clear error naming the shard — never a
// partial bitset — and the surviving engine still refuses rather than
// degrades.
func TestRemoteFailureInjection(t *testing.T) {
	col, _, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 2 * time.Second, Retries: 1})
	e := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
	if _, err := fix.eng.Execute(e); err != nil {
		t.Fatalf("healthy cluster errored: %v", err)
	}

	fix.listeners[1].kill() // crash the second server: listener + conns

	fix.eng.ResetCache() // force re-evaluation, not a cached answer
	_, err := fix.eng.Execute(e)
	if err == nil {
		t.Fatal("execute over a dead shard server succeeded")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("error does not name the failed shard: %v", err)
	}
	// A cached full result is still served — the cache holds complete
	// cohorts only, so this can never be partial.
	if got, err := fix.eng.Execute(query.TrueExpr{}); err != nil || got.Count() != col.Len() {
		t.Errorf("constant plan should not need the backends: %v", err)
	}
}

// TestRemoteRejectsOpaqueQueries: a closure-bearing query cannot be
// shipped; the coordinator must error loudly.
func TestRemoteRejectsOpaqueQueries(t *testing.T) {
	col, _, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 10 * time.Second})
	_, err := fix.eng.Execute(query.Has{Pred: query.MatchFunc{
		Fn:   func(e *model.Entry) bool { return e.Value > 0 },
		Name: "positive",
	}})
	if err == nil {
		t.Fatal("opaque query executed remotely")
	}
	if !strings.Contains(err.Error(), "opaque") {
		t.Errorf("error does not explain the opacity: %v", err)
	}
}

// TestRemoteMaskedEval: the server honors a shipped candidate mask —
// result ≡ the local backend's masked evaluation — and rejects a mask
// sized for the wrong shard before doing any work.
func TestRemoteMaskedEval(t *testing.T) {
	col, st, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 30 * time.Second})
	p, err := Compile(query.And{
		query.Has{Pred: query.TypeIs(model.TypeDiagnosis)},
		query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	p = Optimize(p)
	for _, b := range fix.eng.topoNow().backends {
		m := b.Meta()
		mask := store.NewBitset(m.Patients)
		for i := 0; i < m.Patients; i += 3 {
			mask.Set(i)
		}
		got, err := b.EvalPlan(context.Background(), p, mask)
		if err != nil {
			t.Fatalf("shard %d masked eval: %v", m.Shard, err)
		}
		want, err := NewLocalBackend(st.Slice(m.Offset, m.Offset+m.Patients), m.Shard).EvalPlan(context.Background(), p, mask)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("shard %d: masked remote %d vs local %d", m.Shard, got.Count(), want.Count())
		}
		if _, err := b.EvalPlan(context.Background(), p, store.NewBitset(m.Patients+1)); err == nil {
			t.Errorf("shard %d: wrong-size mask accepted", m.Shard)
		}
	}
}

// TestNewFromBackendsValidatesTiling: gaps or overlaps in the backends'
// ordinal coverage are topology errors, caught at construction.
func TestNewFromBackendsValidatesTiling(t *testing.T) {
	_, st, _ := parityEngines(t)
	n := st.Len()
	ok := []ShardBackend{
		NewLocalBackend(st.Slice(0, n/2), 0),
		NewLocalBackend(st.Slice(n/2, n), 1),
	}
	if _, err := NewFromBackends(ok, Options{}); err != nil {
		t.Fatalf("contiguous backends refused: %v", err)
	}
	gap := []ShardBackend{
		NewLocalBackend(st.Slice(0, n/2-1), 0),
		NewLocalBackend(st.Slice(n/2, n), 1),
	}
	if _, err := NewFromBackends(gap, Options{}); err == nil {
		t.Error("gapped backends accepted")
	}
	overlap := []ShardBackend{
		NewLocalBackend(st.Slice(0, n/2+1), 0),
		NewLocalBackend(st.Slice(n/2, n), 1),
	}
	if _, err := NewFromBackends(overlap, Options{}); err == nil {
		t.Error("overlapping backends accepted")
	}
	if _, err := NewFromBackends(nil, Options{}); err == nil {
		t.Error("empty backend set accepted")
	}
}

// TestRemoteShardStatsRecorded: satellite check — both transports report
// per-shard latency through the same executor-side counters, and the
// backend type is surfaced.
func TestRemoteShardStatsRecorded(t *testing.T) {
	col, st, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 10 * time.Second})
	if _, err := fix.eng.Execute(query.Has{Pred: query.TypeIs(model.TypeContact)}); err != nil {
		t.Fatal(err)
	}
	stats := fix.eng.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(stats))
	}
	for _, s := range stats {
		if !strings.HasPrefix(s.Backend, "remote(") {
			t.Errorf("shard %d backend = %q, want remote(...)", s.Shard, s.Backend)
		}
		if s.Queries == 0 {
			t.Errorf("shard %d recorded no queries", s.Shard)
		}
		if s.Nanos == 0 {
			t.Errorf("shard %d recorded no latency", s.Shard)
		}
	}
	// The local path records through the same counters on its scan
	// fan-outs, and reports its transport.
	local := New(st, Options{Shards: 4, Workers: 2, CacheSize: 0})
	if _, err := local.Execute(query.Has{Pred: query.MustCode("", "T90"), MinCount: 2}); err != nil {
		t.Fatal(err)
	}
	anyTimed := false
	for _, s := range local.ShardStats() {
		if s.Backend != "local" {
			t.Errorf("local shard %d backend = %q", s.Shard, s.Backend)
		}
		if s.Queries > 0 && s.Nanos > 0 {
			anyTimed = true
		}
	}
	if !anyTimed {
		t.Error("local scan fan-out recorded no per-shard latency")
	}
	// Explain surfaces the topology.
	ex, err := fix.eng.Explain(query.TrueExpr{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.String(), "remote(") {
		t.Errorf("explain does not surface backend type:\n%s", ex)
	}
}
