package engine

// Replica health tracking: every replica of a shard carries an observed
// health state fed from two directions. Passively, every real call
// records its outcome — a failure marks the replica down immediately
// (the next call goes elsewhere), a success marks it up and feeds the
// latency EWMA the load balancer reads. Actively, a background checker
// probes every replica each interval with a cheap liveness RPC, so a
// replica that crashed while idle is discovered before a query trips
// over it and a recovered one rejoins rotation without waiting for
// traffic to risk it.

import (
	"context"
	"math"
	"sync/atomic"
	"time"
)

// replicaState is one replica's live health record. All fields are
// updated lock-free: calls, probes and the health loop race freely.
type replicaState struct {
	backend ShardBackend
	name    string // the replica's transport label, e.g. "remote(addr)"

	healthy  atomic.Bool
	fails    atomic.Uint64 // cumulative failed calls/probes
	calls    atomic.Uint64 // cumulative successful calls
	ewmaBits atomic.Uint64 // float64 bits of the latency EWMA in nanoseconds
}

// ewmaAlpha weights the newest latency observation; ~0.2 smooths single
// GC pauses away while still tracking a genuinely degraded replica
// within a handful of calls.
const ewmaAlpha = 0.2

// observe folds one successful call's latency into the EWMA (lock-free
// CAS loop) and marks the replica healthy.
func (r *replicaState) observe(d time.Duration) {
	ns := float64(d.Nanoseconds())
	for {
		old := r.ewmaBits.Load()
		prev := math.Float64frombits(old)
		next := ns
		if prev > 0 {
			next = ewmaAlpha*ns + (1-ewmaAlpha)*prev
		}
		if r.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	r.calls.Add(1)
	r.healthy.Store(true)
}

// markFailed records a failed call or probe and takes the replica out of
// rotation until a probe (or a desperate retry) succeeds.
func (r *replicaState) markFailed() {
	r.fails.Add(1)
	r.healthy.Store(false)
}

// ewma returns the current latency estimate in nanoseconds (0 = no
// observation yet, which sorts as "fastest" so new replicas get tried).
func (r *replicaState) ewma() float64 {
	return math.Float64frombits(r.ewmaBits.Load())
}

// probe runs the cheap liveness check: the backend's Probe if it
// implements Prober, its Stats call otherwise, and updates health and
// the EWMA from the outcome like any other call.
func (r *replicaState) probe(ctx context.Context) error {
	t0 := time.Now()
	var err error
	if p, ok := r.backend.(Prober); ok {
		err = p.Probe(ctx)
	} else {
		_, err = r.backend.Stats(ctx)
	}
	if err != nil {
		r.markFailed()
		return err
	}
	r.observe(time.Since(t0))
	return nil
}

// ReplicaHealth is a point-in-time snapshot of one replica's state, the
// unit the webapp's /api/stats health block and cohortctl render.
type ReplicaHealth struct {
	// Backend is the replica's transport label ("remote(addr)").
	Backend string `json:"backend"`
	// Healthy is the current rotation status.
	Healthy bool `json:"healthy"`
	// EWMAMillis is the latency estimate the load balancer ranks by
	// (0 until the first successful call).
	EWMAMillis float64 `json:"ewma_ms"`
	// Calls and Failures are cumulative per-replica outcome counters.
	Calls    uint64 `json:"calls"`
	Failures uint64 `json:"failures"`
}

func (r *replicaState) snapshot() ReplicaHealth {
	return ReplicaHealth{
		Backend:    r.name,
		Healthy:    r.healthy.Load(),
		EWMAMillis: r.ewma() / 1e6,
		Calls:      r.calls.Load(),
		Failures:   r.fails.Load(),
	}
}

// healthLoop probes every replica each interval until stop is closed.
// Probes run sequentially — a replica set is a handful of members, and
// sequencing keeps a hung replica from stacking up probe goroutines
// (the probe context still bounds each attempt).
func healthLoop(stop <-chan struct{}, interval, probeTimeout time.Duration, replicas []*replicaState) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		for _, r := range replicas {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			_ = r.probe(ctx) // the outcome lands in the replica's state
			cancel()
		}
	}
}
