package engine

// Parity: the engine must return byte-identical bitsets to both the plain
// scan evaluator (query.Eval per history) and the legacy single-store
// interpreter (query.EvalIndexed), across randomized expressions and
// shard counts — including one shard and more shards than patients.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
	"pastas/internal/synth"
)

// parityPop is small enough to keep the property test fast but large
// enough that every registry, code system and shard sees traffic.
const parityPop = 600

var parityFixture struct {
	col     *model.Collection
	st      *store.Store
	engines []*Engine // shard counts 1, 4, 16, parityPop+7
}

func parityEngines(t testing.TB) (*model.Collection, *store.Store, []*Engine) {
	t.Helper()
	if parityFixture.st == nil {
		col, _, err := integrate.Build(synth.Generate(synth.DefaultConfig(parityPop)), integrate.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		st := store.New(col)
		parityFixture.col = col
		parityFixture.st = st
		for _, shards := range []int{1, 4, 16, parityPop + 7} {
			parityFixture.engines = append(parityFixture.engines,
				New(st, Options{Shards: shards, Workers: 4, CacheSize: 32}))
		}
	}
	return parityFixture.col, parityFixture.st, parityFixture.engines
}

var (
	parityPatterns = []string{"T90", `K8.`, `F.*|H.*`, `E11(\..*)?`, `A0.`, `.*9`, "R74", `T90|K86`}
	paritySystems  = []string{"", "ICPC2", "ICD10", "ATC"}
)

func randLeaf(r *rand.Rand) query.Expr {
	pat := parityPatterns[r.Intn(len(parityPatterns))]
	switch r.Intn(9) {
	case 0:
		return query.TrueExpr{}
	case 1:
		return query.Has{Pred: query.TypeIs(model.Type(1 + r.Intn(6)))}
	case 2:
		return query.Has{Pred: query.SourceIs(model.Source(1 + r.Intn(5)))}
	case 3:
		// MinCount > 1 forces the scan fallback.
		return query.Has{Pred: query.MustCode("", pat), MinCount: 2 + r.Intn(2)}
	case 4:
		return query.Has{Pred: query.AllOf{
			query.TypeIs(model.TypeDiagnosis),
			query.MustCode([]string{"", "ICPC2", "ICD10"}[r.Intn(3)], pat)}}
	case 5:
		return query.Has{Pred: query.AllOf{
			query.TypeIs(model.TypeMedication), query.MustCode("ATC", `A.*|C.*`)}}
	case 6:
		lo := 10 + r.Intn(50)
		return query.AgeBetween{Lo: lo, Hi: lo + r.Intn(40), At: model.Date(2011, 1, 1)}
	case 7:
		return query.SexIs(model.Sex(1 + r.Intn(2)))
	default:
		return query.Has{Pred: query.MustCode(paritySystems[r.Intn(len(paritySystems))], pat)}
	}
}

func randExpr(r *rand.Rand, depth int) query.Expr {
	if depth <= 0 {
		return randLeaf(r)
	}
	switch r.Intn(6) {
	case 0:
		n := 2 + r.Intn(2)
		out := make(query.And, n)
		for i := range out {
			out[i] = randExpr(r, depth-1)
		}
		return out
	case 1:
		n := 2 + r.Intn(2)
		out := make(query.Or, n)
		for i := range out {
			out[i] = randExpr(r, depth-1)
		}
		return out
	case 2:
		return query.Not{E: randExpr(r, depth-1)}
	default:
		return randLeaf(r)
	}
}

// scanBits evaluates e by plain per-history scan into ordinal space.
func scanBits(col *model.Collection, st *store.Store, e query.Expr) *store.Bitset {
	out := st.Empty()
	for i, h := range col.Histories() {
		if e.Eval(h) {
			out.Set(i)
		}
	}
	return out
}

func checkParity(t *testing.T, e query.Expr) {
	t.Helper()
	col, st, engines := parityEngines(t)
	want := scanBits(col, st, e)

	legacy, err := query.EvalIndexed(st, e)
	if err != nil {
		t.Fatalf("EvalIndexed(%s): %v", e, err)
	}
	if !legacy.Equal(want) {
		t.Fatalf("legacy interpreter diverges from scan for %s: %d vs %d",
			e, legacy.Count(), want.Count())
	}
	for _, eng := range engines {
		got, err := eng.Execute(e)
		if err != nil {
			t.Fatalf("engine(shards=%d) Execute(%s): %v", eng.NumShards(), e, err)
		}
		if !got.Equal(want) {
			plan, _ := Explain(e)
			t.Fatalf("engine(shards=%d) diverges from scan for %s:\n plan %s\n got %d want %d",
				eng.NumShards(), e, plan, got.Count(), want.Count())
		}
	}
}

// TestEngineParityRandomExprs is the property test the acceptance
// criteria name: randomized expressions, shard counts {1, 4, 16, >N}.
func TestEngineParityRandomExprs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		checkParity(t, randExpr(r, 1+r.Intn(3)))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestEngineParityFixedExprs pins the corner cases random generation may
// miss: empty results, full results, deep nesting, scans under Not.
func TestEngineParityFixedExprs(t *testing.T) {
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	exprs := []query.Expr{
		query.TrueExpr{},
		query.Not{E: query.TrueExpr{}},
		query.And{},
		query.Or{},
		query.And{query.TrueExpr{}, query.TrueExpr{}},
		query.Has{Pred: query.MustCode("", "ZZZ99")}, // matches nothing
		query.Not{E: query.Has{Pred: query.MustCode("", "ZZZ99")}},
		query.And{
			query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}},
			query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
		},
		query.Or{
			query.Has{Pred: query.MustCode("ICPC2", "T90"), MinCount: 3},
			query.Has{Pred: query.TypeIs(model.TypeStay)},
		},
		query.Not{E: query.And{
			query.Has{Pred: query.SourceIs(model.SourceGP)},
			query.Not{E: query.Has{Pred: query.MustCode("", `A.*`), MinCount: 2}},
		}},
		query.And{
			query.AgeBetween{Lo: 30, Hi: 70, At: window.Start},
			query.Or{query.SexIs(model.SexFemale), query.Has{Pred: query.TypeIs(model.TypeMedication)}},
		},
		query.During{
			Interval: query.TypeIs(model.TypeStay),
			Event:    query.TypeIs(model.TypeDiagnosis),
		},
	}
	for _, e := range exprs {
		checkParity(t, e)
	}
}

// FuzzEngineParity drives the same parity check from fuzzed seeds.
func FuzzEngineParity(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		checkParity(t, randExpr(r, 1+r.Intn(3)))
	})
}

// TestEngineCacheCorrectness: repeated execution returns equal bitsets,
// actually hits the cache, and mutation of a returned bitset cannot
// corrupt later answers.
func TestEngineCacheCorrectness(t *testing.T) {
	_, st, _ := parityEngines(t)
	eng := New(st, Options{Shards: 4, Workers: 4, CacheSize: 16})
	e := query.And{
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}},
		query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
	}
	first, err := eng.Execute(e)
	if err != nil {
		t.Fatal(err)
	}
	firstCount := first.Count()
	first.Not() // caller-owned: must not poison the cache

	second, err := eng.Execute(e)
	if err != nil {
		t.Fatal(err)
	}
	if second.Count() != firstCount {
		t.Fatalf("cached result changed: %d vs %d", second.Count(), firstCount)
	}
	if stats := eng.CacheStats(); stats.Hits == 0 {
		t.Errorf("expected cache hits, got %+v", stats)
	}
	eng.ResetCache()
	if stats := eng.CacheStats(); stats.Entries != 0 || stats.Hits != 0 {
		t.Errorf("reset left %+v", stats)
	}
}
