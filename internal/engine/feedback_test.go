package engine

import (
	"fmt"
	"testing"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// fbCollection builds a population where every patient carries two
// measurements: one drawn from [0,100) (patient i gets i%100) and one
// from [1000,1100) on a decorrelated cycle — so ValueBetween predicates
// over the two bands give precisely controlled, independently tunable
// selectivities that the cost model's uniform prior (defaultSel = 0.5)
// knows nothing about.
func fbCollection(n int) *model.Collection {
	base := model.Date(2012, 1, 1)
	hs := make([]*model.History, n)
	for i := range hs {
		h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1960, 1, 1)})
		h.Add(model.Entry{
			ID: uint64(2 * i), Kind: model.Point, Start: base, End: base,
			Type: model.TypeMeasurement, Source: model.Source(1), Value: float64(i % 100),
		})
		h.Add(model.Entry{
			ID: uint64(2*i + 1), Kind: model.Point, Start: base, End: base,
			Type: model.TypeMeasurement, Source: model.Source(1), Value: 1000 + float64((i*37)%100),
		})
		hs[i] = h
	}
	return model.MustCollection(hs...)
}

func valueScan(lo, hi float64) query.Expr {
	return query.Has{Pred: query.ValueBetween{Lo: lo, Hi: hi}}
}

// TestFeedbackReordersCorrelatedConjunction: two unbounded scans with
// identical priors but wildly different true selectivities. The cold
// plan cannot tell them apart (tie → compile order); after one
// execution the recorded cardinalities must re-order the conjunction
// cheapest-first, under a new feedback epoch, with identical results.
func TestFeedbackReordersCorrelatedConjunction(t *testing.T) {
	st := store.New(fbCollection(400))
	e := New(st, Options{Shards: 2, CacheSize: 0})

	wide := valueScan(0, 94)    // true sel 0.95
	narrow := valueScan(90, 94) // true sel 0.05, contained in wide
	q := query.And{wide, narrow}

	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	cold := e.plan(e.topoNow(), p).(And)
	if got := cold.Children[0].(Scan).Expr.String(); got != wide.String() {
		t.Fatalf("cold plan starts with %q, want compile order (tied priors)", got)
	}
	if e.FeedbackEpoch() != 0 {
		t.Fatalf("epoch before execution = %d", e.FeedbackEpoch())
	}

	coldBits, err := e.ExecutePlan(cold)
	if err != nil {
		t.Fatal(err)
	}
	if e.FeedbackEpoch() == 0 {
		t.Fatal("execution recorded no feedback")
	}

	warm := e.plan(e.topoNow(), p).(And)
	if got := warm.Children[0].(Scan).Expr.String(); got != narrow.String() {
		t.Errorf("feedback re-plan starts with %q, want the selective scan %q", got, narrow.String())
	}
	warmBits, err := e.ExecutePlan(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !coldBits.Equal(warmBits) {
		t.Error("re-ordered plan changed the cohort")
	}
	if want := 400 / 100 * 5; warmBits.Count() != want {
		t.Errorf("cohort = %d patients, want %d", warmBits.Count(), want)
	}
}

// TestFeedbackDPBeatsGreedy: three scans where the greedy order (leaf
// cardinalities only) is wrong because two children are anti-correlated
// — each matches half the population but their conjunction is 5%. Only
// the join-order DP, fed the observed prefix cardinality, can see that
// running them first beats leading with the individually-smallest child.
func TestFeedbackDPBeatsGreedy(t *testing.T) {
	st := store.New(fbCollection(1000))
	e := New(st, Options{Shards: 1, CacheSize: 0})

	a := valueScan(0, 49)      // 50%, band one
	b := valueScan(45, 94)     // 50%, band one: overlap with a is 5%
	c := valueScan(1000, 1039) // 40%, band two (independent)
	q := query.And{a, b, c}

	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	coldBits, err := e.ExecutePlan(e.plan(e.topoNow(), p))
	if err != nil {
		t.Fatal(err)
	}

	// Leaf feedback alone would put c (40%) first; the observed a∧b
	// prefix (5%) makes [a, b, c] cheaper: 1 + 0.5 + 0.05 < 1 + 0.4 +
	// 0.4·0.5 in scan units.
	warm := e.plan(e.topoNow(), p).(And)
	last := warm.Children[2].(Scan).Expr.String()
	if last != c.String() {
		t.Errorf("DP order = [%s, %s, %s], want the anti-correlated pair first",
			warm.Children[0], warm.Children[1], warm.Children[2])
	}
	warmBits, err := e.ExecutePlan(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !coldBits.Equal(warmBits) {
		t.Error("DP-ordered plan changed the cohort")
	}
}

// TestFeedbackEpochSettles: re-running a stable workload must not keep
// advancing the epoch (observations within 10% are confirmations), so
// the plan memo converges to cache hits instead of re-planning forever.
func TestFeedbackEpochSettles(t *testing.T) {
	st := store.New(fbCollection(300))
	e := New(st, Options{Shards: 2, CacheSize: 8})
	q := query.And{valueScan(0, 59), valueScan(30, 89)}
	for i := 0; i < 2; i++ {
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	settled := e.FeedbackEpoch()
	for i := 0; i < 3; i++ {
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if e.FeedbackEpoch() != settled {
		t.Errorf("epoch kept advancing on a stable workload: %d → %d", settled, e.FeedbackEpoch())
	}
	if e.plans.len() == 0 {
		t.Error("no plans memoized")
	}
}

// TestPlanMemoKeepsColdEntry: a feedback re-plan lands under the new
// epoch's key; the cold-stats plan stays retrievable under its own.
func TestPlanMemoKeepsColdEntry(t *testing.T) {
	st := store.New(fbCollection(200))
	e := New(st, Options{Shards: 1, CacheSize: 0})
	q := query.And{valueScan(0, 89), valueScan(95, 99)}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}

	cold := e.plan(e.topoNow(), p)
	epoch0 := e.FeedbackEpoch()
	if _, err := e.ExecutePlan(cold); err != nil {
		t.Fatal(err)
	}
	epoch1 := e.FeedbackEpoch()
	if epoch1 == epoch0 {
		t.Fatal("execution did not advance the epoch")
	}
	warm := e.plan(e.topoNow(), p)
	if warm.String() == cold.String() {
		t.Fatal("re-plan produced the cold plan; feedback had no effect")
	}

	if got, ok := e.plans.get(planMemoKey(p.Key(), epoch0, 0)); !ok || got.String() != cold.String() {
		t.Errorf("cold-epoch plan evicted or replaced (ok=%v)", ok)
	}
	if got, ok := e.plans.get(planMemoKey(p.Key(), epoch1, 0)); !ok || got.String() != warm.String() {
		t.Errorf("warm-epoch plan missing (ok=%v)", ok)
	}
}

// TestPlanMemoKeyCollision: distinct (expression, epoch, generation)
// triples must map to distinct memo keys even when naive concatenation
// would collide.
func TestPlanMemoKeyCollision(t *testing.T) {
	triples := []struct {
		key        string
		epoch, gen uint64
	}{
		{"a", 1, 0}, {"a", 2, 0}, {"b", 1, 0},
		{"a1", 2, 0}, {"1a", 2, 0}, {"a", 12, 0},
		{"2\x00a", 1, 0}, {"a", 21, 0},
		{"a", 1, 2}, {"a", 21, 1}, {"a", 2, 1},
		{"1\x00a", 1, 1}, {"a", 11, 1}, {"a", 1, 11},
	}
	seen := make(map[string]int)
	for i, p := range triples {
		k := planMemoKey(p.key, p.epoch, p.gen)
		if j, dup := seen[k]; dup {
			t.Errorf("triples %d and %d collide on %q", j, i, k)
		}
		seen[k] = i
	}
}

// TestFeedbackOpaqueScansStayFresh: opaque scans (per-compile keys) are
// never memoized across compilations, but within one compiled plan the
// key is stable, so feedback still improves a re-planned opaque plan.
func TestFeedbackOpaqueScansStayFresh(t *testing.T) {
	st := store.New(fbCollection(200))
	e := New(st, Options{Shards: 1, CacheSize: 0})
	opaque := query.Has{Pred: query.MatchFunc{
		Name: "custom",
		Fn:   func(en *model.Entry) bool { return en.Value < 10 },
	}}
	p, err := Compile(query.And{valueScan(0, 89), opaque})
	if err != nil {
		t.Fatal(err)
	}
	if cacheable(p) {
		t.Fatal("plan with MatchFunc classified cacheable")
	}
	memoBefore := e.plans.len()
	bits1, err := e.ExecutePlan(e.plan(e.topoNow(), p))
	if err != nil {
		t.Fatal(err)
	}
	if e.plans.len() != memoBefore {
		t.Error("opaque plan was memoized")
	}
	// Same compiled plan, re-planned: feedback applies via the stable
	// per-compile key.
	bits2, err := e.ExecutePlan(e.plan(e.topoNow(), p))
	if err != nil {
		t.Fatal(err)
	}
	if !bits1.Equal(bits2) {
		t.Error("opaque re-plan changed the cohort")
	}
}

// TestFeedbackResetWithCache: ResetCache must drop feedback and memoized
// plans along with cached results, restoring truly cold planning.
func TestFeedbackResetWithCache(t *testing.T) {
	st := store.New(fbCollection(200))
	e := New(st, Options{Shards: 1, CacheSize: 8})
	if _, err := e.Execute(query.And{valueScan(0, 89), valueScan(95, 99)}); err != nil {
		t.Fatal(err)
	}
	if e.FeedbackEpoch() == 0 {
		t.Fatal("no feedback recorded")
	}
	e.ResetCache()
	if e.FeedbackEpoch() != 0 || e.fb.size() != 0 || e.plans.len() != 0 {
		t.Errorf("ResetCache left state: epoch=%d fb=%d plans=%d",
			e.FeedbackEpoch(), e.fb.size(), e.plans.len())
	}
}

// TestFeedbackLRUBounded: the observation store must evict, not grow.
func TestFeedbackLRUBounded(t *testing.T) {
	f := newFeedback(8)
	for i := 0; i < 100; i++ {
		f.observe(0, fmt.Sprintf("k%d", i), i)
	}
	if f.size() != 8 {
		t.Fatalf("size = %d, want 8", f.size())
	}
	if _, ok := f.rowsFor(0, "k0"); ok {
		t.Error("oldest entry survived eviction")
	}
	if rows, ok := f.rowsFor(0, "k99"); !ok || rows != 99 {
		t.Errorf("newest entry = %d, %v", rows, ok)
	}
	// Confirmations within 10% must not advance the epoch.
	before := f.epochNow()
	f.observe(0, "k99", 95)
	if f.epochNow() != before {
		t.Error("a within-10% confirmation advanced the epoch")
	}
	f.observe(0, "k99", 9)
	if f.epochNow() == before {
		t.Error("a 10× cardinality shift did not advance the epoch")
	}
}
