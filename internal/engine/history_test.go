package engine

// The history-level distributed contract: fetched histories and
// server-side indicator aggregates from a coordinator over remote shard
// servers are identical — history for history, bit for bit in the
// finalized rates — to a local store answering the same requests, at
// shard counts {1, 4, 16}; hostile fetch payloads decode to errors; a
// dead shard server turns every history operation into a loud failure.

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// sameHistory compares patient record and entry content.
func sameHistory(t *testing.T, got, want *model.History) {
	t.Helper()
	if got.Patient != want.Patient {
		t.Fatalf("patient %+v, want %+v", got.Patient, want.Patient)
	}
	a, b := got.SortedEntries(), want.SortedEntries()
	if len(a) != len(b) {
		t.Fatalf("patient %s: %d entries, want %d", want.Patient.ID, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("patient %s entry %d: %+v, want %+v", want.Patient.ID, i, a[i], b[i])
		}
	}
}

// TestRemoteHistoryParity: Histories, HistoryByID and Indicators answer
// over loopback shard servers exactly as a local store does, across
// shard counts {1, 4, 16}. Runs under -race in CI.
func TestRemoteHistoryParity(t *testing.T) {
	col, st, _ := parityEngines(t)
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	local := New(st, Options{Shards: 4, Workers: 4, CacheSize: 32})

	cohortExpr := query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}}

	for _, shards := range []int{1, 4, 16} {
		fix := startShardServers(t, col, shards, 2, RemoteOptions{Timeout: 30 * time.Second})

		bits, err := fix.eng.Execute(cohortExpr)
		if err != nil {
			t.Fatal(err)
		}
		wantBits, err := local.Execute(cohortExpr)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(wantBits) {
			t.Fatalf("shards=%d: cohort diverged before the history test began", shards)
		}

		// Cohort fetch: every selected history ships intact, in ordinal
		// order.
		gotHs, err := fix.eng.Histories(bits)
		if err != nil {
			t.Fatalf("shards=%d: remote Histories: %v", shards, err)
		}
		wantHs, err := local.Histories(wantBits)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotHs) != len(wantHs) {
			t.Fatalf("shards=%d: fetched %d histories, want %d", shards, len(gotHs), len(wantHs))
		}
		for i := range wantHs {
			sameHistory(t, gotHs[i], wantHs[i])
		}

		// Point lookup: first, last, and a middle patient resolve across
		// the wire; a patient that does not exist is ErrNoPatient.
		for _, ord := range []int{0, col.Len() / 2, col.Len() - 1} {
			want := col.At(ord)
			got, err := fix.eng.HistoryByID(want.Patient.ID)
			if err != nil {
				t.Fatalf("shards=%d: HistoryByID(%s): %v", shards, want.Patient.ID, err)
			}
			sameHistory(t, got, want)
		}
		if _, err := fix.eng.HistoryByID(model.PatientID(1 << 40)); !errors.Is(err, ErrNoPatient) {
			t.Fatalf("shards=%d: missing patient gave %v, want ErrNoPatient", shards, err)
		}

		// Server-side aggregation: the merged partials finalize to
		// bit-identical rates, for the cohort and for everyone.
		for _, b := range []*store.Bitset{bits, store.NewBitset(col.Len()).Not(), store.NewBitset(col.Len())} {
			gotInd, err := fix.eng.Indicators(b, window)
			if err != nil {
				t.Fatalf("shards=%d: remote Indicators: %v", shards, err)
			}
			wantInd, err := local.Indicators(b, window)
			if err != nil {
				t.Fatal(err)
			}
			if gotInd != wantInd {
				t.Fatalf("shards=%d: indicators diverge:\nremote %+v\nlocal  %+v", shards, gotInd, wantInd)
			}
			// And both equal the sequential single-pass reference.
			ref := stats.ComputeIndicators(st.Subset(b), window)
			if gotInd != ref {
				t.Fatalf("shards=%d: indicators diverge from sequential reference:\nremote %+v\nref    %+v", shards, gotInd, ref)
			}
		}
	}
}

// TestFetchOrdinalValidation: both transports hold the FetchHistories
// argument contract — out-of-range and non-increasing ordinals are
// rejected before any work.
func TestFetchOrdinalValidation(t *testing.T) {
	col, st, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 10 * time.Second})
	for _, b := range append([]ShardBackend{}, fix.eng.topoNow().backends...) {
		m := b.Meta()
		if _, err := b.FetchHistories(context.Background(), []int{m.Patients}); err == nil {
			t.Errorf("shard %d: out-of-range ordinal accepted", m.Shard)
		}
		if _, err := b.FetchHistories(context.Background(), []int{1, 1}); err == nil {
			t.Errorf("shard %d: duplicate ordinal accepted", m.Shard)
		}
		if _, err := b.FetchHistories(context.Background(), []int{2, 1}); err == nil {
			t.Errorf("shard %d: decreasing ordinals accepted", m.Shard)
		}
		if _, err := b.FetchHistories(context.Background(), nil); err != nil {
			t.Errorf("shard %d: empty fetch refused: %v", m.Shard, err)
		}
	}
	lb := NewLocalBackend(st.Slice(0, st.Len()), 0)
	if _, err := lb.FetchHistories(context.Background(), []int{st.Len()}); err == nil {
		t.Error("local backend: out-of-range ordinal accepted")
	}
}

// TestRemoteHistoryFailureInjection: with one shard server dead, cohort
// fetches, point lookups and indicator aggregation all fail loudly —
// never a partial answer, and never a false "no such patient".
func TestRemoteHistoryFailureInjection(t *testing.T) {
	col, _, _ := parityEngines(t)
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 2 * time.Second, Retries: 1})

	all := store.NewBitset(col.Len()).Not()
	if _, err := fix.eng.Histories(all); err != nil {
		t.Fatalf("healthy cluster refused a fetch: %v", err)
	}

	fix.listeners[1].kill()

	if _, err := fix.eng.Histories(all); err == nil {
		t.Error("cohort fetch over a dead shard server succeeded")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Errorf("fetch error does not name the shard: %v", err)
	}
	// The patient exists — on a dead shard. And even for patients on the
	// live server, a failed probe elsewhere must surface, not vanish.
	if _, err := fix.eng.HistoryByID(col.At(col.Len() - 1).Patient.ID); err == nil {
		t.Error("lookup on a dead shard server succeeded")
	} else if errors.Is(err, ErrNoPatient) {
		t.Errorf("dead shard server reported as missing patient: %v", err)
	}
	if _, err := fix.eng.HistoryByID(col.At(0).Patient.ID); err == nil {
		t.Error("lookup with a dead probe target succeeded")
	} else if errors.Is(err, ErrNoPatient) {
		t.Errorf("dead probe reported as missing patient: %v", err)
	}
	if _, err := fix.eng.Indicators(all, window); err == nil {
		t.Error("indicator aggregation over a dead shard server succeeded")
	}
}

// TestShardServerGracefulShutdown: Shutdown closes the listener, refuses
// new calls, and Serve reports the clean close.
func TestShardServerGracefulShutdown(t *testing.T) {
	col, _, _ := parityEngines(t)
	path := filepath.Join(t.TempDir(), "shutdown.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveSharded(f, col, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardServer(path, nil, Options{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	bs, _, err := DialShards(lis.Addr().String(), RemoteOptions{Timeout: 5 * time.Second, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs[0].Stats(context.Background()); err != nil {
		t.Fatalf("pre-shutdown call failed: %v", err)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// Calls on the surviving connection are refused, not hung.
	if _, err := bs[0].Stats(context.Background()); err == nil {
		t.Error("post-shutdown call succeeded")
	}
}
