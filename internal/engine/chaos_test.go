package engine

// Chaos parity: the failure-semantics acceptance suite. A replicated
// remote cluster under FaultBackend flap schedules stays bit-identical
// to the reference interpreter at shard counts {1, 4, 16}; PolicyStrict
// never returns a partial cohort no matter what dies; PolicyDegraded's
// Incomplete mask names exactly the dead shards, and degraded answers
// never poison the plan cache. Plus the drain contract: a shard server
// in Shutdown refuses with ErrDraining and the coordinator fails over
// to its replica instead of erroring.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// chaosCluster is a coordinator over a fully replicated remote topology:
// every shard served by `replicas` independent shard servers, each
// remote backend wrapped in a FaultBackend for sabotage.
type chaosCluster struct {
	eng       *Engine
	servers   []*ShardServer
	listeners []*trackingListener
	// faults[r][s] wraps replica r's backend for shard s.
	faults [][]*FaultBackend
}

// startChaosCluster snapshots the parity collection at the given shard
// count and serves every shard from `replicas` servers, assembling a
// coordinator whose per-shard backends are replica sets over
// fault-injectable remote backends.
func startChaosCluster(t testing.TB, col *model.Collection, shards, replicas int, opts Options) *chaosCluster {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := store.SaveSharded(f, col, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	allIDs := make([]int, info.Shards)
	for i := range allIDs {
		allIDs[i] = i
	}
	cl := &chaosCluster{}
	for r := 0; r < replicas; r++ {
		srv, err := NewShardServer(path, allIDs, Options{Shards: 2, Workers: 2, CacheSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tl := &trackingListener{Listener: lis}
		cl.servers = append(cl.servers, srv)
		cl.listeners = append(cl.listeners, tl)
		go srv.Serve(tl)
		bs, total, err := DialShards(lis.Addr().String(), RemoteOptions{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if total != col.Len() {
			t.Fatalf("replica %d reports %d total patients, snapshot has %d", r, total, col.Len())
		}
		row := make([]*FaultBackend, len(bs))
		for s, b := range bs {
			row[s] = NewFaultBackend(b)
		}
		cl.faults = append(cl.faults, row)
	}
	sets := make([]ShardBackend, info.Shards)
	for s := 0; s < info.Shards; s++ {
		members := make([]ShardBackend, replicas)
		for r := 0; r < replicas; r++ {
			members[r] = cl.faults[r][s]
		}
		rb, err := NewReplicaBackend(members, ReplicaOptions{
			ProbeInterval: 20 * time.Millisecond,
			ProbeTimeout:  time.Second,
			BackoffBase:   time.Millisecond,
			BackoffMax:    10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sets[s] = rb
	}
	eng, err := NewFromBackends(sets, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl.eng = eng
	t.Cleanup(func() {
		eng.Close()
		for _, l := range cl.listeners {
			l.kill()
		}
	})
	return cl
}

// TestChaosParityUnderFlap: with one replica of every shard flapping up
// and down continuously, a strict coordinator still answers every parity
// query bit-identically to the reference interpreter — failover absorbs
// the outages completely, across shard counts {1, 4, 16}.
func TestChaosParityUnderFlap(t *testing.T) {
	col, st, _ := parityEngines(t)
	for _, shards := range []int{1, 4, 16} {
		// CacheSize 0: every Execute must re-fan out and face the chaos.
		cl := startChaosCluster(t, col, shards, 2, Options{Workers: 4, CacheSize: 0})
		for _, row := range cl.faults[0] {
			row.StartFlap(7*time.Millisecond, 7*time.Millisecond)
		}
		r := rand.New(rand.NewSource(int64(7000 + shards)))
		exprs := []query.Expr{
			query.TrueExpr{},
			query.And{
				query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}},
				query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
			},
		}
		for i := 0; i < 12; i++ {
			exprs = append(exprs, randExpr(r, 1+r.Intn(3)))
		}
		for _, e := range exprs {
			want, err := query.EvalIndexed(st, e)
			if err != nil {
				t.Fatalf("EvalIndexed(%s): %v", e, err)
			}
			got, err := cl.eng.Execute(e)
			if err != nil {
				t.Fatalf("shards=%d: Execute(%s) under flap: %v", shards, e, err)
			}
			if !got.Equal(want) {
				t.Fatalf("shards=%d: flapping cluster diverges for %s: %d vs %d",
					shards, e, got.Count(), want.Count())
			}
		}
		// The flapping replica must actually absorb traffic and inject
		// failures — otherwise this test proved nothing. A fast expr loop
		// can land entirely inside "up" windows, so keep driving queries
		// (still asserting parity) until an injection is observed; the
		// 20ms health probes land in down windows too.
		injected := func() uint64 {
			total := uint64(0)
			for _, row := range cl.faults[0] {
				total += row.Failures()
			}
			return total
		}
		want, err := query.EvalIndexed(st, exprs[1])
		if err != nil {
			t.Fatal(err)
		}
		for deadline := time.Now().Add(5 * time.Second); injected() == 0 && time.Now().Before(deadline); {
			got, err := cl.eng.Execute(exprs[1])
			if err != nil {
				t.Fatalf("shards=%d: Execute under flap: %v", shards, err)
			}
			if !got.Equal(want) {
				t.Fatalf("shards=%d: flapping cluster diverges: %d vs %d", shards, got.Count(), want.Count())
			}
			time.Sleep(time.Millisecond)
		}
		for _, row := range cl.faults[0] {
			row.StopFlap()
		}
		if injected() == 0 {
			t.Errorf("shards=%d: flap schedule never injected a failure", shards)
		}
	}
}

// degradedFixture: a local 4-shard topology with one FaultBackend per
// shard (no replicas — degradation, not failover, is under test).
func degradedFixture(t *testing.T, policy Policy, cacheSize int) (*Engine, []*FaultBackend, *store.Store) {
	t.Helper()
	_, st, _ := parityEngines(t)
	metas := New(st, Options{Shards: 4, Workers: 2}).BackendInfo()
	faults := make([]*FaultBackend, len(metas))
	backends := make([]ShardBackend, len(metas))
	for i, m := range metas {
		faults[i] = NewFaultBackend(NewLocalBackend(st.Slice(m.Offset, m.Offset+m.Patients), i))
		backends[i] = faults[i]
	}
	eng, err := NewFromBackends(backends, Options{Workers: 4, CacheSize: cacheSize, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, faults, st
}

// TestDegradedIncompleteExactness: under PolicyDegraded with shards 1
// and 3 dead, the answer equals the reference cohort minus exactly those
// shards' ordinal ranges, MissingShards and the Incomplete mask name
// exactly {1, 3}, and MissingPatients is their summed population.
func TestDegradedIncompleteExactness(t *testing.T) {
	eng, faults, st := degradedFixture(t, PolicyDegraded, 32)
	e := query.Expr(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	want, err := query.EvalIndexed(st, e)
	if err != nil {
		t.Fatal(err)
	}

	faults[1].Fail()
	faults[3].Fail()
	got, status, err := eng.ExecuteStatus(context.Background(), e)
	if err != nil {
		t.Fatalf("degraded execute errored instead of degrading: %v", err)
	}
	if !reflect.DeepEqual(status.MissingShards, []int{1, 3}) {
		t.Fatalf("MissingShards = %v, want [1 3]", status.MissingShards)
	}
	metas := eng.BackendInfo()
	if wantMissing := metas[1].Patients + metas[3].Patients; status.MissingPatients != wantMissing {
		t.Errorf("MissingPatients = %d, want %d", status.MissingPatients, wantMissing)
	}
	if ones := status.IncompleteMask(len(metas)).Ones(); !reflect.DeepEqual(ones, []int{1, 3}) {
		t.Errorf("IncompleteMask ones = %v, want [1 3]", ones)
	}
	if !strings.Contains(status.String(), "shards 1,3") {
		t.Errorf("status string does not name the shards: %s", status)
	}
	// Exactness: the partial answer is the full answer minus precisely
	// the dead shards' ordinal ranges — nothing more missing, nothing
	// extra present.
	expected := want.Clone()
	for _, i := range []int{1, 3} {
		dead := store.NewBitset(st.Len())
		for o := metas[i].Offset; o < metas[i].Offset+metas[i].Patients; o++ {
			dead.Set(o)
		}
		expected.AndNot(dead)
	}
	if !got.Equal(expected) {
		t.Fatalf("degraded cohort is not exactly the live shards' answer: %d vs %d",
			got.Count(), expected.Count())
	}

	// Poisoning check: the incomplete answer must not have entered the
	// plan cache — after recovery the same query is complete again
	// WITHOUT any cache reset.
	faults[1].Recover()
	faults[3].Recover()
	got2, status2, err := eng.ExecuteStatus(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if !status2.Complete() {
		t.Fatalf("post-recovery status still incomplete: %s", status2)
	}
	if !got2.Equal(want) {
		t.Fatal("post-recovery answer still partial: the degraded result was cached")
	}
}

// TestStrictNeverPartial: the same dead-shard topology under
// PolicyStrict turns into a loud error naming the shard — a partial
// bitset is never returned, with or without the status API.
func TestStrictNeverPartial(t *testing.T) {
	eng, faults, _ := degradedFixture(t, PolicyStrict, 0)
	e := query.Expr(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	faults[2].Fail()
	if _, err := eng.Execute(e); err == nil {
		t.Fatal("strict execute over a dead shard succeeded")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Errorf("error does not name the shard: %v", err)
	}
	bits, status, err := eng.ExecuteStatus(context.Background(), e)
	if err == nil {
		t.Fatalf("strict ExecuteStatus returned (complete=%v) instead of an error", status.Complete())
	}
	if bits != nil {
		t.Error("strict failure leaked a bitset alongside the error")
	}
}

// TestDegradedIndicators: the aggregation path degrades the same way —
// indicators over the live shards, the dead one named in the status.
func TestDegradedIndicators(t *testing.T) {
	eng, faults, st := degradedFixture(t, PolicyDegraded, 0)
	cohort := store.NewBitset(st.Len()).Not()
	window := model.Period{Start: model.Date(2008, 1, 1), End: model.Date(2014, 1, 1)}
	full, status, err := eng.IndicatorsStatus(context.Background(), cohort, window)
	if err != nil || !status.Complete() {
		t.Fatalf("healthy indicators: err=%v status=%s", err, status)
	}
	faults[0].Fail()
	partial, status, err := eng.IndicatorsStatus(context.Background(), cohort, window)
	if err != nil {
		t.Fatalf("degraded indicators errored: %v", err)
	}
	if !reflect.DeepEqual(status.MissingShards, []int{0}) {
		t.Fatalf("MissingShards = %v, want [0]", status.MissingShards)
	}
	if partial.Patients >= full.Patients {
		t.Errorf("partial indicators cover %d patients, full covers %d", partial.Patients, full.Patients)
	}
}

// TestDrainFailover: Shutdown on one server of a replicated pair makes
// it refuse with the distinct drain error, and the coordinator fails
// over to the surviving replica — a rolling restart is invisible.
func TestDrainFailover(t *testing.T) {
	col, st, _ := parityEngines(t)
	cl := startChaosCluster(t, col, 4, 2, Options{Workers: 4, CacheSize: 0})
	e := query.Expr(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	want, err := query.EvalIndexed(st, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.eng.Execute(e); err != nil {
		t.Fatalf("healthy cluster: %v", err)
	}

	// Drain replica 0. Its listener closes and every new RPC is refused
	// with the draining marker; in-flight calls get to finish.
	if err := cl.servers[0].Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The draining replica's direct error is the distinct ErrDraining,
	// not a generic transport failure.
	_, err = cl.faults[0][0].EvalPlan(context.Background(), parityPlan(t), nil)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("draining server answered %v, want ErrDraining", err)
	}

	// The coordinator fails over, repeatedly, with zero errors.
	for i := 0; i < 4; i++ {
		got, err := cl.eng.Execute(e)
		if err != nil {
			t.Fatalf("execute during drain: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("drain failover diverges: %d vs %d", got.Count(), want.Count())
		}
	}
}

// badDescribeRPC is a fake shard server advertising a corrupt shard
// table, for exercising dial-time identity validation end to end.
type badDescribeRPC struct{ reply DescribeReply }

func (r *badDescribeRPC) Describe(_ *DescribeArgs, reply *DescribeReply) error {
	*reply = r.reply
	return nil
}

func serveBadDescribe(t *testing.T, reply DescribeReply) string {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName(rpcServiceName, &badDescribeRPC{reply: reply}); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return lis.Addr().String()
}

// TestDialShardsValidatesIdentity: a server advertising duplicate ids,
// overlapping ranges, out-of-population shards or negative geometry is
// rejected at dial time with an error naming the corruption — not at
// first query.
func TestDialShardsValidatesIdentity(t *testing.T) {
	meta := func(shard, offset, patients int) ShardMeta {
		return ShardMeta{Shard: shard, Offset: offset, Patients: patients, Entries: 1}
	}
	cases := []struct {
		name  string
		reply DescribeReply
		want  string
	}{
		{"duplicate ids", DescribeReply{
			Shards: []ShardMeta{meta(0, 0, 10), meta(0, 10, 10)}, TotalPatients: 20,
		}, "twice"},
		{"overlap", DescribeReply{
			Shards: []ShardMeta{meta(0, 0, 10), meta(1, 5, 10)}, TotalPatients: 20,
		}, "overlapping"},
		{"beyond population", DescribeReply{
			Shards: []ShardMeta{meta(0, 0, 30)}, TotalPatients: 20,
		}, "beyond its own population"},
		{"negative geometry", DescribeReply{
			Shards: []ShardMeta{meta(0, -1, 10)}, TotalPatients: 20,
		}, "negative"},
		{"no shards", DescribeReply{TotalPatients: 20}, "serves no shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := serveBadDescribe(t, tc.reply)
			_, _, err := DialShards(addr, RemoteOptions{Timeout: 5 * time.Second})
			if err == nil {
				t.Fatal("corrupt shard table accepted at dial time")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the corruption (want %q)", err, tc.want)
			}
			if !strings.Contains(err.Error(), addr) {
				t.Errorf("error %q does not name the server", err)
			}
		})
	}
}
