package engine

import (
	"fmt"
	"strings"

	"pastas/internal/query"
)

// EXPLAIN-style plan annotation: the optimized plan tree with the cost
// model's estimated rows and cost attached to every node, in execution
// order — the planner's audit trail for the paper's 0.1 s budget.

// ExplainNode is one annotated plan node.
type ExplainNode struct {
	// Label is the node's rendering: leaf String() for leaves, the bare
	// operator for And/Or/Not.
	Label string
	// Est is the cost model's estimate; zero when no statistics exist.
	Est Estimate
	// Children are in execution order.
	Children []ExplainNode
}

// Explained is a cost-annotated optimized plan.
type Explained struct {
	// Plan is the optimized plan the engine would execute.
	Plan Plan
	// Root is the annotated tree.
	Root ExplainNode
	// Patients is the population the estimates are over.
	Patients int
	// Backends is the shard topology the plan will execute over, in
	// offset order — one entry per backend, naming its transport.
	Backends []ShardMeta
	// Policy is the engine's failure semantics for this execution.
	Policy Policy
	// Unhealthy names the shards whose backends currently have no
	// healthy replica — the shards a degraded execution would report
	// missing, and a strict one would fail on.
	Unhealthy []int
	// Seed, when non-nil, reports that a materialized cohort would seed
	// this plan's execution through Engine.Refine — the mask-provenance
	// annotation that makes the O(delta) refinement observable.
	Seed *SeedInfo
}

// SeedInfo names the materialized cohort a refinement of this plan would
// be seeded by, and how.
type SeedInfo struct {
	// Cohort is the seeding cohort's name; Count its cardinality — the
	// candidate set the delta would be bounded to.
	Cohort string `json:"cohort"`
	Count  int    `json:"count"`
	// Mode is RefineExact, RefineNarrow or RefineWiden.
	Mode string `json:"mode"`
	// Delta is the canonical key of the plan fragment that would actually
	// run (empty for an exact match).
	Delta string `json:"delta,omitempty"`
	// Pushed reports whether the seed mask would be shipped to remote
	// shards (a coordinator) or applied in-process (a local engine).
	Pushed bool `json:"pushed"`
}

// Explain compiles and cost-optimizes an expression and annotates every
// node with its estimated rows and cost, without executing it.
func (e *Engine) Explain(q query.Expr) (*Explained, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	t := e.topoNow()
	p = e.plan(t, p)
	m := newFeedbackCostModel(t.stats, e.fb, t.gen)
	x := &Explained{Plan: p, Root: annotate(p, m), Patients: t.n, Backends: e.BackendInfo(), Policy: e.policy}
	for _, h := range e.Health() {
		if !h.Healthy {
			x.Unhealthy = append(x.Unhealthy, h.Shard)
		}
	}
	if seed, remaining, mode := e.refineSeed(t, p); seed != nil {
		x.Seed = &SeedInfo{Cohort: seed.name, Count: seed.count, Mode: mode, Pushed: t.view == nil}
		switch mode {
		case RefineNarrow:
			x.Seed.Delta = andOf(remaining).Key()
		case RefineWiden:
			x.Seed.Delta = orOf(remaining).Key()
		case RefineExact:
			x.Seed.Pushed = false // nothing executes, nothing is shipped
		}
	}
	return x, nil
}

// backendSummary compresses the topology into "4×local" or
// "2×remote(host:7070), 2×remote(host:7071)" style, preserving first-
// occurrence order.
func backendSummary(metas []ShardMeta) string {
	var order []string
	counts := make(map[string]int)
	for _, m := range metas {
		if counts[m.Backend] == 0 {
			order = append(order, m.Backend)
		}
		counts[m.Backend]++
	}
	parts := make([]string, len(order))
	for i, name := range order {
		parts[i] = fmt.Sprintf("%d×%s", counts[name], name)
	}
	return strings.Join(parts, ", ")
}

func annotate(p Plan, m *costModel) ExplainNode {
	n := ExplainNode{Label: nodeLabel(p)}
	if m != nil {
		n.Est = m.estimate(p)
	}
	switch t := p.(type) {
	case And:
		for _, c := range t.Children {
			n.Children = append(n.Children, annotate(c, m))
		}
	case Or:
		for _, c := range t.Children {
			n.Children = append(n.Children, annotate(c, m))
		}
	case Not:
		n.Children = append(n.Children, annotate(t.Child, m))
	}
	return n
}

func nodeLabel(p Plan) string {
	switch p.(type) {
	case And:
		return "and"
	case Or:
		return "or"
	case Not:
		return "not"
	default:
		return p.String()
	}
}

// String renders the annotated plan as an indented tree, children in
// execution order:
//
//	and  est_rows≈92 est_cost≈2.4e+04
//	  index:ICPC2~"T90"  est_rows≈1250 est_cost≈4.9e+02
//	  scan{has>=2(code~"K8.")}  est_rows≈2900 est_cost≈2.3e+04
func (x *Explained) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan over %d patients", x.Patients)
	if len(x.Backends) > 0 {
		fmt.Fprintf(&b, " (backends: %s)", backendSummary(x.Backends))
	}
	if x.Policy != PolicyStrict {
		fmt.Fprintf(&b, " [policy: %s]", x.Policy)
	}
	if len(x.Unhealthy) > 0 {
		fmt.Fprintf(&b, " [unhealthy shards: %v]", x.Unhealthy)
	}
	b.WriteString(":\n")
	if s := x.Seed; s != nil {
		where := "masked locally"
		if s.Pushed {
			where = "mask pushed down to remote shards"
		}
		switch s.Mode {
		case RefineExact:
			fmt.Fprintf(&b, "seed: cohort %q (%d patients) answers exactly — refine executes nothing\n", s.Cohort, s.Count)
		default:
			fmt.Fprintf(&b, "seed: cohort %q (%d patients, %s) bounds the scan, delta %s, %s\n",
				s.Cohort, s.Count, s.Mode, s.Delta, where)
		}
	}
	writeNode(&b, &x.Root, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *ExplainNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Label)
	fmt.Fprintf(b, "  est_rows≈%.0f est_cost≈%.3g", n.Est.Rows, n.Est.Cost)
	b.WriteByte('\n')
	for i := range n.Children {
		writeNode(b, &n.Children[i], depth+1)
	}
}
