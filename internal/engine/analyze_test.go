package engine

// The distributed-analytics contract: every registered analyzer kind
// returns partials identical to a single-threaded reference pass at
// shard counts {1, 4, 16}, over remote shard servers and in-process
// local backends alike, with the cohort mask pushed down; hostile
// AnalyzeArgs (unknown kind, truncated params, corrupt mask) are loud
// errors, never panics; and fault injection degrades or fails over
// exactly like every other fan-out. Runs under -race in CI — the map
// steps read shared histories concurrently, so a mutating step would
// fail here.

import (
	"context"
	"hash/crc32"
	"net/rpc"
	"reflect"
	"strings"
	"testing"
	"time"

	"pastas/internal/abstraction"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
	"pastas/internal/temporal"
)

// analyzeRequests sweeps every registered kind with representative
// parameters: plain and sequential mining, episode tallies, and a
// scenario over chapter labels the synthetic population actually emits.
func analyzeRequests(t testing.TB) []AnalyzeRequest {
	t.Helper()
	var reqs []AnalyzeRequest
	mk := func(r AnalyzeRequest, err error) {
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	mk(MineRequest(MineParams{System: "ICPC2"}))
	mk(MineRequest(MineParams{Sequential: true, MaxGap: 3, Chapter: true}))
	mk(EpisodesRequest(EpisodeParams{Gap: 90 * model.Day}))
	mk(ScenarioRequest(ScenarioParams{Gap: 90 * model.Day, Scenario: temporal.Scenario{
		Steps: []string{"T", "K"},
		Relations: []temporal.StepRel{
			{I: 0, J: 1, Rel: temporal.Before | temporal.Meets | temporal.Overlaps},
		},
	}}))
	return reqs
}

// refAnalyze is the single-threaded reference: the same map step, run
// sequentially over the masked-in histories in global order, with no
// sharding, no merge and no wire codec in the path.
func refAnalyze(t testing.TB, col *model.Collection, bits *store.Bitset, req AnalyzeRequest) Partial {
	t.Helper()
	spec := analyzers[req.Kind]
	params, err := spec.decodeParams(req.Params)
	if err != nil {
		t.Fatal(err)
	}
	part := spec.newPartial(params)
	for i, h := range col.Histories() {
		if bits.Get(i) {
			spec.addHistory(part, params, h)
		}
	}
	return part
}

// normalizePartial maps nil and empty maps to the same representation:
// gob transports an empty map as an absent field, which decodes to nil —
// semantically identical, so the comparison must not distinguish them.
func normalizePartial(p Partial) Partial {
	switch v := p.(type) {
	case *mining.Counts:
		if v.Single == nil {
			v.Single = map[string]int{}
		}
		if v.Pair == nil {
			v.Pair = map[[2]string]int{}
		}
	case *abstraction.EpisodeTally:
		if v.ByDominant == nil {
			v.ByDominant = map[string]int{}
		}
	}
	return p
}

// TestAnalyzeParity is the acceptance property: remote shard servers and
// a local-backend fan-out both reproduce the sequential reference
// exactly, for every kind, at shard counts {1, 4, 16}, over the whole
// population and over a pushed-down cohort mask.
func TestAnalyzeParity(t *testing.T) {
	col, st, _ := parityEngines(t)
	reqs := analyzeRequests(t)
	cohortExpr := query.Expr(query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}})
	for _, shards := range []int{1, 4, 16} {
		fix := startShardServers(t, col, shards, 2, RemoteOptions{Timeout: 30 * time.Second})
		var locals []ShardBackend
		for i, m := range New(st, Options{Shards: shards, Workers: 2}).BackendInfo() {
			locals = append(locals, NewLocalBackend(st.Slice(m.Offset, m.Offset+m.Patients), i))
		}
		localDist, err := NewFromBackends(locals, Options{Workers: 4, CacheSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range []query.Expr{query.TrueExpr{}, cohortExpr} {
			bits, err := fix.eng.Execute(expr)
			if err != nil {
				t.Fatal(err)
			}
			for _, req := range reqs {
				want := normalizePartial(refAnalyze(t, col, bits, req))
				for name, eng := range map[string]*Engine{"remote": fix.eng, "local-dist": localDist} {
					got, err := eng.Analyze(bits, req)
					if err != nil {
						t.Fatalf("shards=%d %s Analyze(%s over %s): %v", shards, name, req.Kind, expr, err)
					}
					if !reflect.DeepEqual(normalizePartial(got), want) {
						t.Fatalf("shards=%d %s kind=%s over %s: partial mismatch\n got %+v\nwant %+v",
							shards, name, req.Kind, expr, got, want)
					}
					if got.HistoryCount() > bits.Count() {
						t.Fatalf("shards=%d %s kind=%s: tallied %d histories from a %d-member cohort",
							shards, name, req.Kind, got.HistoryCount(), bits.Count())
					}
				}
			}
		}
		localDist.Close()
	}
}

// TestAnalyzeRulesDeterministic: the coordinator-side finalization over
// merged counts yields the same ruleset, in the same order, from the
// remote partials as from the reference — the end-to-end byte-identity
// the CLI diff test relies on.
func TestAnalyzeRulesDeterministic(t *testing.T) {
	col, _, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 2, RemoteOptions{Timeout: 30 * time.Second})
	bits, err := fix.eng.Execute(query.TrueExpr{})
	if err != nil {
		t.Fatal(err)
	}
	req, err := MineRequest(MineParams{System: "ICPC2", Chapter: true})
	if err != nil {
		t.Fatal(err)
	}
	part, err := fix.eng.Analyze(bits, req)
	if err != nil {
		t.Fatal(err)
	}
	opt := mining.Options{MinSupport: 0.01, MinCount: 2}
	got := part.(*mining.Counts).Rules(opt)
	want := refAnalyze(t, col, bits, req).(*mining.Counts).Rules(opt)
	if len(got) == 0 {
		t.Fatal("no rules mined from the parity population; the fixture no longer exercises mining")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed rules differ from reference:\n got %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(mining.Top(got, 5), mining.Top(want, 5)) {
		t.Fatalf("Top(5) differs between distributed and reference rules")
	}
}

// TestAnalyzeHostileRPC drives raw wire payloads at a live shard server:
// every malformed request is a loud per-call error, the connection and
// server survive, and a well-formed call still answers afterwards.
func TestAnalyzeHostileRPC(t *testing.T) {
	col, _, _ := parityEngines(t)
	fix := startShardServers(t, col, 4, 1, RemoteOptions{Timeout: 10 * time.Second})
	client, err := rpc.Dial("tcp", fix.listeners[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	valid, err := MineRequest(MineParams{System: "ICPC2"})
	if err != nil {
		t.Fatal(err)
	}
	shardPatients := fix.eng.BackendInfo()[0].Patients
	call := func(args AnalyzeRPCArgs) (AnalyzeRPCReply, error) {
		var reply AnalyzeRPCReply
		err := client.Call(rpcServiceName+".Analyze", &args, &reply)
		return reply, err
	}

	if _, err := call(AnalyzeRPCArgs{Shard: 0, Kind: "bogus", Params: valid.Params}); err == nil {
		t.Fatal("unknown analyzer kind: want error, got success")
	}
	if _, err := call(AnalyzeRPCArgs{Shard: 0, Kind: AnalyzeMine}); err == nil {
		t.Fatal("missing params: want error, got success")
	}
	if _, err := call(AnalyzeRPCArgs{Shard: 0, Kind: AnalyzeMine, Params: valid.Params[:3]}); err == nil {
		t.Fatal("truncated params: want error, got success")
	}

	mask := store.NewBitset(shardPatients)
	mask.Set(0)
	maskData, err := mask.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	crc := crc32.Checksum(maskData, maskCRCTable)
	if _, err := call(AnalyzeRPCArgs{
		Shard: 0, Kind: AnalyzeMine, Params: valid.Params, Mask: maskData, MaskCRC: crc ^ 1,
	}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt mask crc: want checksum error, got %v", err)
	}

	wrong := store.NewBitset(shardPatients + 17)
	wrongData, err := wrong.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call(AnalyzeRPCArgs{
		Shard: 0, Kind: AnalyzeMine, Params: valid.Params,
		Mask: wrongData, MaskCRC: crc32.Checksum(wrongData, maskCRCTable),
	}); err == nil {
		t.Fatal("wrong-length mask: want error, got success")
	}

	// The server must still answer a well-formed request on the same
	// connection — the abuse above cannot have wedged or killed it.
	reply, err := call(AnalyzeRPCArgs{
		Shard: 0, Kind: AnalyzeMine, Params: valid.Params, Mask: maskData, MaskCRC: crc,
	})
	if err != nil {
		t.Fatalf("well-formed call after hostile ones: %v", err)
	}
	part, err := decodeAnalyzePartial(AnalyzeMine, reply.Partial)
	if err != nil {
		t.Fatal(err)
	}
	if got := part.HistoryCount(); got < 0 || got > 1 {
		t.Fatalf("one-member mask tallied %d histories", got)
	}
}

// TestAnalyzeBadBitset: a coordinator-level request with an unknown kind
// or a stale-generation bitset fails before any fan-out.
func TestAnalyzeBadRequest(t *testing.T) {
	_, st, engines := parityEngines(t)
	eng := engines[1]
	bits, err := eng.Execute(query.TrueExpr{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(bits, AnalyzeRequest{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind: want error")
	}
	if _, err := eng.Analyze(bits, AnalyzeRequest{Kind: AnalyzeMine, Params: []byte{0x01}}); err == nil {
		t.Fatal("garbage params: want error")
	}
	if _, err := MineRequest(MineParams{MaxGap: -1}); err == nil {
		t.Fatal("negative MaxGap: want error")
	}
	if _, err := EpisodesRequest(EpisodeParams{}); err == nil {
		t.Fatal("zero gap: want error")
	}
	if _, err := ScenarioRequest(ScenarioParams{Gap: model.Day, Scenario: temporal.Scenario{
		Steps: []string{"T"}, Relations: []temporal.StepRel{{I: 0, J: 5, Rel: temporal.Before}},
	}}); err == nil {
		t.Fatal("out-of-range scenario relation: want error")
	}
	short := store.NewBitset(st.Len() - 1)
	req, err := EpisodesRequest(EpisodeParams{Gap: 90 * model.Day})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(short, req); err == nil {
		t.Fatal("wrong-length bitset: want error")
	}
}

// TestAnalyzeDegradedAndStrict: under PolicyDegraded a dead shard is
// absorbed and reported — the tally covers exactly the reachable
// population — while the default strict policy turns the same outage
// into a hard error naming the shard.
func TestAnalyzeDegradedAndStrict(t *testing.T) {
	col, st, _ := parityEngines(t)
	const shards = 4
	build := func(policy Policy) (*Engine, []*FaultBackend) {
		var faults []*FaultBackend
		var backends []ShardBackend
		for i, m := range New(st, Options{Shards: shards, Workers: 2}).BackendInfo() {
			f := NewFaultBackend(NewLocalBackend(st.Slice(m.Offset, m.Offset+m.Patients), i))
			faults = append(faults, f)
			backends = append(backends, f)
		}
		eng, err := NewFromBackends(backends, Options{Workers: 4, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng, faults
	}
	req, err := EpisodesRequest(EpisodeParams{Gap: 90 * model.Day})
	if err != nil {
		t.Fatal(err)
	}

	deg, faults := build(PolicyDegraded)
	bits, err := deg.Execute(query.TrueExpr{})
	if err != nil {
		t.Fatal(err)
	}
	part, status, err := deg.AnalyzeStatus(context.Background(), bits, req)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Complete() || part.HistoryCount() != col.Len() {
		t.Fatalf("healthy degraded run: tallied %d of %d, status %+v", part.HistoryCount(), col.Len(), status)
	}

	faults[1].Fail()
	part, status, err = deg.AnalyzeStatus(context.Background(), bits, req)
	if err != nil {
		t.Fatalf("degraded analyze with one shard down: %v", err)
	}
	if len(status.MissingShards) != 1 || status.MissingShards[0] != 1 {
		t.Fatalf("missing shards = %v, want [1]", status.MissingShards)
	}
	wantHistories := col.Len() - deg.BackendInfo()[1].Patients
	if part.HistoryCount() != wantHistories {
		t.Fatalf("degraded tally covers %d histories, want %d", part.HistoryCount(), wantHistories)
	}

	strict, sfaults := build(PolicyStrict)
	sfaults[2].Fail()
	if _, err := strict.Analyze(bits, req); err == nil || !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("strict analyze with shard 2 down: want error naming the shard, got %v", err)
	}
}

// TestAnalyzeReplicaFailover: a replica set whose primary is down serves
// Analyze from the secondary with results identical to the reference.
func TestAnalyzeReplicaFailover(t *testing.T) {
	col, st, _ := parityEngines(t)
	const shards = 4
	var backends []ShardBackend
	for i, m := range New(st, Options{Shards: shards, Workers: 2}).BackendInfo() {
		slice := st.Slice(m.Offset, m.Offset+m.Patients)
		primary := NewFaultBackend(NewLocalBackend(slice, i))
		primary.Fail()
		rb, err := NewReplicaBackend(
			[]ShardBackend{primary, NewLocalBackend(slice, i)}, ReplicaOptions{ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, rb)
	}
	eng, err := NewFromBackends(backends, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bits, err := eng.Execute(query.TrueExpr{})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range analyzeRequests(t) {
		got, err := eng.Analyze(bits, req)
		if err != nil {
			t.Fatalf("replica analyze %s: %v", req.Kind, err)
		}
		want := normalizePartial(refAnalyze(t, col, bits, req))
		if !reflect.DeepEqual(normalizePartial(got), want) {
			t.Fatalf("replica analyze %s: partial mismatch\n got %+v\nwant %+v", req.Kind, got, want)
		}
	}
}
