package engine

// FaultBackend: a ShardBackend decorator that injects failures on a
// schedule — hard errors, added latency, hangs, and up/down flapping.
// It is how the chaos tests (and the chaos parity suite) exercise the
// failover and degradation machinery deterministically, without real
// processes to kill: wrap any backend, flip its mode, and every
// operation misbehaves the way a crashed, overloaded or wedged shard
// server would. Injected errors are ErrUnavailable-classified, exactly
// like real transport failures, so replica sets fail over on them and
// PolicyDegraded absorbs them.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pastas/internal/model"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// FaultMode is the backend's current injected behavior.
type FaultMode int32

const (
	// FaultNone passes every call through untouched.
	FaultNone FaultMode = iota
	// FaultError fails every call with an ErrUnavailable-wrapped error.
	FaultError
	// FaultHang blocks every call until Release is called or the call's
	// context expires — the wedged-server case that deadline threading
	// exists for.
	FaultHang
)

// FaultBackend wraps a ShardBackend with a controllable fault schedule.
type FaultBackend struct {
	inner ShardBackend

	mode     atomic.Int32
	latency  atomic.Int64  // injected per-call latency, nanoseconds
	failNext atomic.Int64  // one-shot failure budget, consumed per call
	calls    atomic.Uint64 // total calls gated (including failed ones)
	failures atomic.Uint64 // calls failed by injection

	mu      sync.Mutex
	release chan struct{} // closed to release hanging calls
	flap    chan struct{} // non-nil while a flap schedule runs
}

// NewFaultBackend wraps a backend, initially healthy.
func NewFaultBackend(inner ShardBackend) *FaultBackend {
	return &FaultBackend{inner: inner, release: make(chan struct{})}
}

// Meta implements ShardBackend; the label marks the injection wrapper so
// stats surfaces show it.
func (f *FaultBackend) Meta() ShardMeta {
	m := f.inner.Meta()
	m.Backend = "fault(" + m.Backend + ")"
	return m
}

// SetMode switches the injected behavior. Leaving FaultHang releases the
// calls currently blocked.
func (f *FaultBackend) SetMode(mode FaultMode) {
	old := FaultMode(f.mode.Swap(int32(mode)))
	if old == FaultHang && mode != FaultHang {
		f.Release()
	}
}

// Fail starts failing every call; Recover restores pass-through.
func (f *FaultBackend) Fail()    { f.SetMode(FaultError) }
func (f *FaultBackend) Recover() { f.SetMode(FaultNone) }

// FailNext injects failures into the next n calls (independent of the
// mode), then passes through again — the transient-blip schedule.
func (f *FaultBackend) FailNext(n int) { f.failNext.Store(int64(n)) }

// SetLatency injects a fixed delay before every call (0 clears it). The
// delay respects the call's context deadline.
func (f *FaultBackend) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// Release unblocks every call currently parked by FaultHang.
func (f *FaultBackend) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.release)
	f.release = make(chan struct{})
}

// StartFlap runs an up/down schedule: healthy for up, failing for down,
// repeating until StopFlap or Close. Calling it again restarts the
// schedule.
func (f *FaultBackend) StartFlap(up, down time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flap != nil {
		close(f.flap)
	}
	stop := make(chan struct{})
	f.flap = stop
	go func() {
		for {
			f.SetMode(FaultNone)
			select {
			case <-stop:
				return
			case <-time.After(up):
			}
			f.SetMode(FaultError)
			select {
			case <-stop:
				f.SetMode(FaultNone)
				return
			case <-time.After(down):
			}
		}
	}()
}

// StopFlap halts the flap schedule and leaves the backend healthy.
func (f *FaultBackend) StopFlap() {
	f.mu.Lock()
	if f.flap != nil {
		close(f.flap)
		f.flap = nil
	}
	f.mu.Unlock()
	f.SetMode(FaultNone)
}

// Calls and Failures report the cumulative gated and injected-failure
// call counts — how tests assert traffic actually hit the wrapper.
func (f *FaultBackend) Calls() uint64    { return f.calls.Load() }
func (f *FaultBackend) Failures() uint64 { return f.failures.Load() }

// gate applies the fault schedule to one call: count it, delay it, then
// fail, hang or admit it.
func (f *FaultBackend) gate(ctx context.Context) error {
	f.calls.Add(1)
	if d := time.Duration(f.latency.Load()); d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			f.failures.Add(1)
			return fmt.Errorf("engine: fault(%s): %w: %w", f.inner.Meta().Backend, ErrUnavailable, ctx.Err())
		}
	}
	if f.failNext.Load() > 0 && f.failNext.Add(-1) >= 0 {
		f.failures.Add(1)
		return fmt.Errorf("engine: fault(%s): injected failure: %w", f.inner.Meta().Backend, ErrUnavailable)
	}
	switch FaultMode(f.mode.Load()) {
	case FaultError:
		f.failures.Add(1)
		return fmt.Errorf("engine: fault(%s): injected failure: %w", f.inner.Meta().Backend, ErrUnavailable)
	case FaultHang:
		f.mu.Lock()
		release := f.release
		f.mu.Unlock()
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			f.failures.Add(1)
			return fmt.Errorf("engine: fault(%s): hung: %w: %w", f.inner.Meta().Backend, ErrUnavailable, ctx.Err())
		}
	default:
		return nil
	}
}

// Stats implements ShardBackend.
func (f *FaultBackend) Stats(ctx context.Context) (*store.Stats, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.Stats(ctx)
}

// EvalPlan implements ShardBackend.
func (f *FaultBackend) EvalPlan(ctx context.Context, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.EvalPlan(ctx, p, mask)
}

// IDsOf implements ShardBackend.
func (f *FaultBackend) IDsOf(ctx context.Context, bits *store.Bitset) ([]model.PatientID, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.IDsOf(ctx, bits)
}

// FetchHistories implements ShardBackend.
func (f *FaultBackend) FetchHistories(ctx context.Context, ordinals []int) ([]*model.History, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.FetchHistories(ctx, ordinals)
}

// LocateID implements ShardBackend.
func (f *FaultBackend) LocateID(ctx context.Context, id model.PatientID) (int, bool, error) {
	if err := f.gate(ctx); err != nil {
		return 0, false, err
	}
	return f.inner.LocateID(ctx, id)
}

// Indicators implements ShardBackend.
func (f *FaultBackend) Indicators(ctx context.Context, mask *store.Bitset, window model.Period) (stats.IndicatorCounts, error) {
	if err := f.gate(ctx); err != nil {
		return stats.IndicatorCounts{}, err
	}
	return f.inner.Indicators(ctx, mask, window)
}

// Profile implements ShardBackend.
func (f *FaultBackend) Profile(ctx context.Context, mask *store.Bitset, window model.Period) (stats.CohortProfile, error) {
	if err := f.gate(ctx); err != nil {
		return stats.CohortProfile{}, err
	}
	return f.inner.Profile(ctx, mask, window)
}

// Analyze implements ShardBackend.
func (f *FaultBackend) Analyze(ctx context.Context, args AnalyzeArgs) (Partial, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.Analyze(ctx, args)
}

// Probe implements Prober, under the same fault schedule as real calls —
// a health checker must see the injected outage.
func (f *FaultBackend) Probe(ctx context.Context) error {
	if err := f.gate(ctx); err != nil {
		return err
	}
	if p, ok := f.inner.(Prober); ok {
		return p.Probe(ctx)
	}
	_, err := f.inner.Stats(ctx)
	return err
}

// Close implements ShardBackend: stops any flap schedule, releases any
// hung calls and closes the wrapped backend.
func (f *FaultBackend) Close() error {
	f.StopFlap()
	f.Release()
	return f.inner.Close()
}
