package engine

import (
	"math"
	"math/bits"
	"sort"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// Cost model. The planner estimates, for every plan node, how many
// patients it will match (Rows) and what evaluating it costs (Cost), from
// the exact cardinalities the store collects at New time. Index leaves are
// estimated from their posting-list counts; Not/And/Or compose children
// under the usual independence assumption; Scan nodes cost a calibrated
// per-history constant times the candidates they will actually visit.
// OptimizeWithStats uses the estimates to reorder And children
// most-selective-cheapest-first and Or children largest-first, replacing
// PR 1's static index-before-scan hoist.

// Estimate is the planner's guess at a plan node's output size and
// evaluation cost.
type Estimate struct {
	// Rows is the expected number of matching patients.
	Rows float64
	// Cost is in abstract units: one unit ≈ one 64-patient bitset word
	// operation. Scans dominate — evaluating one history costs two to
	// three orders of magnitude more than one word op.
	Cost float64
}

// Cost constants, calibrated against the E6/E8 measurements: a predicate
// probe of one entry is tens of ns, a bitset word op about one, a regex
// probe of one vocabulary code a handful.
const (
	costPerEntry   = 16.0 // predicate probe of one entry, in word ops
	costPerHistory = 32.0 // fixed per-history scan overhead
	costPerCode    = 8.0  // regex probe of one vocabulary code
	defaultSel     = 0.5  // selectivity prior for opaque predicates
)

// costModel estimates plans over one store's statistics.
type costModel struct {
	st *store.Stats
	n  float64 // population
	// perHistory is the calibrated cost of scanning one history.
	perHistory float64
	// leafMemo caches leaf estimates by canonical key: leaves are the
	// expensive estimates (code patterns walk the vocabulary with a
	// regex) and, unlike And/Or, their estimate cannot depend on child
	// order. The optimizer re-estimates subtrees at every ancestor
	// level; with leaves memoized those re-walks are pure arithmetic.
	leafMemo map[string]Estimate
	// fb holds executor-observed true cardinalities; when non-nil,
	// observations override the model's row estimates (see feedback.go).
	fb *feedback
	// gen is the store generation the model plans for; feedback from any
	// other generation is ignored.
	gen uint64
}

// newCostModel returns nil (meaning: fall back to the static optimizer)
// when there are no statistics or no population to estimate over.
func newCostModel(st *store.Stats) *costModel {
	if st == nil || st.Patients == 0 {
		return nil
	}
	return &costModel{
		st:         st,
		n:          float64(st.Patients),
		perHistory: costPerHistory + st.AvgEntries()*costPerEntry,
		leafMemo:   make(map[string]Estimate),
	}
}

// newFeedbackCostModel is newCostModel with execution feedback attached,
// scoped to the store generation being planned for. An empty feedback
// store contributes nothing, so the model skips the per-node key
// rendering entirely until the first observation lands.
func newFeedbackCostModel(st *store.Stats, fb *feedback, gen uint64) *costModel {
	m := newCostModel(st)
	if m != nil && fb != nil && fb.size() > 0 {
		m.fb = fb
		m.gen = gen
	}
	return m
}

// words is the cost of one full-population bitset operation.
func (m *costModel) words() float64 { return m.n/64 + 1 }

// estimate returns the node's estimate; children of And/Or are costed in
// the order given (the optimizer orders them before estimating parents).
// When execution feedback exists for the node's canonical key, the
// observed true cardinality replaces the modeled row count — this is how
// the independence assumption gets corrected for correlated predicates.
func (m *costModel) estimate(p Plan) Estimate {
	est := m.estimateModel(p)
	if m.fb != nil {
		switch p.(type) {
		case All, None:
		default:
			if rows, ok := m.fb.rowsFor(m.gen, p.Key()); ok {
				est.Rows = float64(rows)
			}
		}
	}
	return est
}

// estimateModel is the pure statistics-derived estimate.
func (m *costModel) estimateModel(p Plan) Estimate {
	switch n := p.(type) {
	case All:
		return Estimate{Rows: m.n, Cost: m.words()}
	case None:
		return Estimate{Rows: 0, Cost: m.words()}
	case IndexScan:
		return m.leaf(n, func() Estimate { return m.estimateIndex(n) })
	case Scan:
		// The executor prefilters a scan by its index-derived bound, so
		// cost scales with the bound's selectivity, not the population.
		return m.leaf(n, func() Estimate {
			return Estimate{
				Rows: m.exprSel(n.Expr) * m.n,
				Cost: m.boundSel(n.Expr)*m.n*m.perHistory + m.words(),
			}
		})
	case Not:
		c := m.estimate(n.Child)
		return Estimate{Rows: m.n - c.Rows, Cost: c.Cost + m.words()}
	case And:
		sel, cost := 1.0, 0.0
		for _, c := range n.Children {
			ce := m.estimate(c)
			if hasScan(c) {
				// Masked by the accumulated candidates: only the
				// surviving fraction is visited.
				cost += ce.Cost * sel
			} else {
				cost += ce.Cost
			}
			sel *= ce.Rows / m.n
		}
		return Estimate{Rows: m.n * sel, Cost: cost + m.words()}
	case Or:
		accSel, cost := 0.0, 0.0
		for _, c := range n.Children {
			ce := m.estimate(c)
			if hasScan(c) {
				// Only patients not already matched are visited.
				cost += ce.Cost * (1 - accSel)
			} else {
				cost += ce.Cost
			}
			accSel = 1 - (1-accSel)*(1-ce.Rows/m.n)
		}
		return Estimate{Rows: m.n * accSel, Cost: cost + m.words()}
	default:
		return Estimate{Rows: m.n * defaultSel, Cost: m.n * m.perHistory}
	}
}

// leaf memoizes a leaf estimate by canonical key.
func (m *costModel) leaf(p Plan, compute func() Estimate) Estimate {
	key := p.Key()
	if est, ok := m.leafMemo[key]; ok {
		return est
	}
	est := compute()
	m.leafMemo[key] = est
	return est
}

// estimateIndex reads an index leaf's estimate straight off the exact
// cardinalities; code patterns get the capped union bound over matching
// vocabulary entries.
func (m *costModel) estimateIndex(p IndexScan) Estimate {
	cost := m.words()
	var rows int
	switch p.Op {
	case OpType:
		rows = m.st.TypeCard(p.Type)
	case OpSource:
		rows = m.st.SourceCard(p.Source)
	default:
		cost += float64(m.st.DistinctCodes) * costPerCode
		systems := p.Systems
		if len(systems) == 0 {
			systems = []string{""}
		}
		for _, sys := range systems {
			// Patterns were validated at compile time; an error here
			// cannot happen, and zero is a safe estimate if it did.
			c, _ := m.st.CodePatternCard(sys, p.Pattern)
			rows += c
		}
		if rows > m.st.Patients {
			rows = m.st.Patients
		}
	}
	return Estimate{Rows: float64(rows), Cost: cost}
}

// exprSel estimates the fraction of patients a scanned expression
// matches. Index-derivable parts use exact cardinalities (as upper
// bounds); demographics use uniform priors; anything opaque gets
// defaultSel. Composition assumes independence.
func (m *costModel) exprSel(e query.Expr) float64 {
	switch q := e.(type) {
	case query.TrueExpr:
		return 1
	case query.And:
		sel := 1.0
		for _, c := range q {
			sel *= m.exprSel(c)
		}
		return sel
	case query.Or:
		keep := 1.0
		for _, c := range q {
			keep *= 1 - m.exprSel(c)
		}
		return 1 - keep
	case query.Not:
		return 1 - m.exprSel(q.E)
	case query.Has:
		// MinCount > 1 only shrinks the match set; the ≥1-entry
		// cardinality stays a sound upper bound.
		return m.predSel(q.Pred, defaultSel)
	case query.SexIs:
		return 0.5
	case query.AgeBetween:
		// Uniform prior over a ~90-year demographic span.
		sel := float64(q.Hi-q.Lo+1) / 90
		return clampSel(sel)
	case query.Sequence:
		sel := 1.0
		for _, st := range q.Steps {
			sel *= m.predSel(st.Pred, defaultSel)
		}
		return sel
	case query.During:
		return m.predSel(q.Interval, defaultSel) * m.predSel(q.Event, defaultSel)
	default:
		return defaultSel
	}
}

// predSel estimates the fraction of patients with at least one entry
// matching an event predicate; unknown reports the given prior for
// predicate types the indexes know nothing about.
func (m *costModel) predSel(p query.EventPred, unknown float64) float64 {
	switch q := p.(type) {
	case *query.Code:
		c, err := m.st.CodePatternCard(q.System, q.Pattern)
		if err != nil {
			return unknown
		}
		return float64(c) / m.n
	case query.TypeIs:
		return float64(m.st.TypeCard(model.Type(q))) / m.n
	case query.SourceIs:
		return float64(m.st.SourceCard(model.Source(q))) / m.n
	case query.AllOf:
		sel := 1.0
		for _, c := range q {
			sel *= m.predSel(c, unknown)
		}
		return sel
	case query.AnyOf:
		keep := 1.0
		for _, c := range q {
			keep *= 1 - m.predSel(c, unknown)
		}
		return 1 - keep
	default: // NotEv, KindIs, ValueBetween, InPeriod, TextMatch, MatchFunc…
		return unknown
	}
}

// boundSel estimates the fraction of the population the executor will
// actually visit for a scan: the selectivity of the scan's index-derived
// candidate bound (see scanBound), or 1 when no bound exists. It mirrors
// scanBound's structure exactly, with unknown predicates contributing no
// restriction (selectivity 1) instead of a prior.
func (m *costModel) boundSel(e query.Expr) float64 {
	switch q := e.(type) {
	case query.Has:
		return m.predSel(q.Pred, 1)
	case query.And:
		sel := 1.0
		for _, c := range q {
			sel *= m.boundSel(c)
		}
		return sel
	case query.Or:
		total := 0.0
		for _, c := range q {
			cs := m.boundSel(c)
			if cs >= 1 {
				return 1 // one unbounded child unbounds the union
			}
			total += cs
		}
		return clampSel(total)
	case query.Sequence:
		sel := 1.0
		for _, st := range q.Steps {
			sel *= m.predSel(st.Pred, 1)
		}
		return sel
	case query.During:
		return m.predSel(q.Interval, 1) * m.predSel(q.Event, 1)
	default:
		return 1
	}
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// order arranges children for execution: a greedy sort (below), then —
// for And nodes with few enough children — an exact join-order search
// that replaces the greedy order whenever its modeled cost is strictly
// lower. The DP matters most once feedback exists: true conjunction
// cardinalities break the independence assumption the greedy sort ranks
// by, and only a search over orders can exploit them.
func (m *costModel) order(children []Plan, conj bool) {
	m.orderGreedy(children, conj)
	if conj && len(children) >= 2 && len(children) <= maxDPAndChildren {
		m.refineAndOrder(children)
	}
}

// orderGreedy sorts And children most-selective-cheapest-first and Or
// children largest-first, in place and stably. In both cases scan-free
// children (index leaves and boolean combinations of them — near-free
// bitset algebra) stay ahead of scan-bearing ones: under And they narrow
// the candidate mask before any history is visited, under Or they grow
// the set of patients later scans may skip.
func (m *costModel) orderGreedy(children []Plan, conj bool) {
	ests := make([]Estimate, len(children))
	for i, c := range children {
		ests[i] = m.estimate(c)
	}
	idx := make([]int, len(children))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		si, sj := hasScan(children[i]), hasScan(children[j])
		if si != sj {
			return !si // scan-free first
		}
		if ests[i].Rows != ests[j].Rows {
			if conj {
				return ests[i].Rows < ests[j].Rows // And: most selective first
			}
			return ests[i].Rows > ests[j].Rows // Or: largest first
		}
		return ests[i].Cost < ests[j].Cost // ties: cheapest first
	})
	ordered := make([]Plan, len(children))
	for a, i := range idx {
		ordered[a] = children[i]
	}
	copy(children, ordered)
}

// maxDPAndChildren bounds the exact join-order search: 2^8 subset states
// × 8 transitions is a few thousand float ops, negligible next to one
// scan; beyond that the greedy order stands.
const maxDPAndChildren = 8

// refineAndOrder runs a Selinger-style subset DP over the And children:
// dp[S] is the cheapest cost of evaluating the member set S in some
// order, where a scan-bearing child added after S costs its estimate
// scaled by S's selectivity (evalAnd masks scans by the accumulated
// candidates) and a scan-free child costs the same wherever it runs.
// Subset selectivities come from observed conjunction cardinalities when
// feedback has them (evalAnd records every prefix it materializes, under
// the order-insensitive canonical And key), independence otherwise. The
// DP order replaces the greedy one only when strictly cheaper, so a
// fresh engine plans exactly as the greedy sort always has.
func (m *costModel) refineAndOrder(children []Plan) {
	k := len(children)
	ests := make([]Estimate, k)
	scans := make([]bool, k)
	for i, c := range children {
		ests[i] = m.estimate(c)
		scans[i] = hasScan(c)
	}

	full := 1<<k - 1
	sel := make([]float64, full+1)
	sel[0] = 1
	for S := 1; S <= full; S++ {
		low := S & (-S)
		i := bits.TrailingZeros64(uint64(low))
		sel[S] = sel[S&^low] * clampSel(ests[i].Rows/m.n)
		if m.fb != nil && S != low { // ≥2 members: a true conjunction count may exist
			members := make([]Plan, 0, k)
			for j := 0; j < k; j++ {
				if S&(1<<j) != 0 {
					members = append(members, children[j])
				}
			}
			if rows, ok := m.fb.rowsFor(m.gen, And{Children: members}.Key()); ok {
				sel[S] = clampSel(float64(rows) / m.n)
			}
		}
	}

	childCost := func(i int, prefix int) float64 {
		if scans[i] {
			return ests[i].Cost * sel[prefix]
		}
		return ests[i].Cost
	}

	dp := make([]float64, full+1)
	last := make([]int, full+1)
	for S := 1; S <= full; S++ {
		dp[S] = math.Inf(1)
		for i := 0; i < k; i++ {
			bit := 1 << i
			if S&bit == 0 {
				continue
			}
			if c := dp[S&^bit] + childCost(i, S&^bit); c < dp[S] {
				dp[S] = c
				last[S] = i
			}
		}
	}

	// Cost of the greedy order under the same selectivity table; replace
	// it only when the search found something strictly cheaper.
	greedy := 0.0
	for i := 0; i < k; i++ {
		prefix := 0
		for j := 0; j < i; j++ {
			prefix |= 1 << j
		}
		greedy += childCost(i, prefix)
	}
	if dp[full] >= greedy*(1-1e-9) {
		return
	}
	ordered := make([]Plan, k)
	for S, a := full, k-1; S != 0; a-- {
		i := last[S]
		ordered[a] = children[i]
		S &^= 1 << i
	}
	copy(children, ordered)
}
