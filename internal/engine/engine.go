package engine

import (
	"fmt"
	"runtime"
	"sync"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// Options tunes the engine.
type Options struct {
	// Shards is the number of store shards; clamped to [1, patients].
	// 1 reuses the global store without building shard indexes.
	Shards int
	// Workers bounds concurrent per-shard evaluation (and parallel shard
	// construction). Defaults to GOMAXPROCS.
	Workers int
	// CacheSize is the LRU capacity in cached sub-plan bitsets; 0
	// disables caching.
	CacheSize int
}

// DefaultOptions sizes the engine to the machine.
func DefaultOptions() Options {
	n := runtime.GOMAXPROCS(0)
	return Options{Shards: n, Workers: n, CacheSize: 128}
}

// shard is one contiguous slice of the population with its own inverted
// indexes; local ordinal i is global ordinal off+i.
type shard struct {
	st  *store.Store
	off int
}

// Engine executes compiled plans over a sharded store.
type Engine struct {
	st      *store.Store
	shards  []shard
	workers int
	cache   *planCache
}

// New builds an engine over an already-indexed global store. With more
// than one shard the population is split into contiguous chunks, each
// indexed independently (in parallel), so leaf evaluation fans out across
// a worker pool and merges per-shard bitsets by ordinal offset.
func New(st *store.Store, opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{st: st, workers: workers, cache: newPlanCache(opts.CacheSize)}

	n := st.Len()
	shards := opts.Shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		e.shards = []shard{{st: st, off: 0}}
		return e
	}

	chunk := (n + shards - 1) / shards
	histories := st.Collection().Histories()
	for off := 0; off < n; off += chunk {
		e.shards = append(e.shards, shard{off: off})
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range e.shards {
		lo := e.shards[i].off
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			e.shards[i].st = store.New(model.MustCollection(histories[lo:hi]...))
		}(i, lo, hi)
	}
	wg.Wait()
	return e
}

// Store returns the global store the engine answers over.
func (e *Engine) Store() *store.Store { return e.st }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// CacheStats reports plan-cache hits, misses and occupancy.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// ResetCache empties the plan cache (benchmarks use this to measure cold
// executions).
func (e *Engine) ResetCache() {
	if e.cache != nil {
		e.cache.reset()
	}
}

// Execute compiles, optimizes and runs a query expression, returning the
// matching patients as a bitset in global ordinal space.
func (e *Engine) Execute(q query.Expr) (*store.Bitset, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return e.ExecutePlan(Optimize(p))
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(p Plan) (*store.Bitset, error) { return e.eval(p) }

// Explain returns the optimized plan for an expression without running it.
func Explain(q query.Expr) (Plan, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return Optimize(p), nil
}

// Select is Execute materialized as patient IDs in collection order.
func (e *Engine) Select(q query.Expr) ([]model.PatientID, error) {
	b, err := e.Execute(q)
	if err != nil {
		return nil, err
	}
	return e.st.IDsOf(b), nil
}

// eval computes the exact result of p over the whole population. Results
// of non-trivial nodes land in the LRU keyed by canonical sub-plan, so a
// refined query re-uses the unchanged parts of its predecessor. The
// returned bitset is owned by the caller.
func (e *Engine) eval(p Plan) (*store.Bitset, error) {
	switch p.(type) {
	case All:
		return e.st.All(), nil
	case None:
		return e.st.Empty(), nil
	}
	useCache := e.cache != nil && cacheable(p)
	key := ""
	if useCache {
		key = p.Key()
		if b, ok := e.cache.get(key); ok {
			return b, nil
		}
	}
	var out *store.Bitset
	var err error
	switch n := p.(type) {
	case IndexScan:
		out, err = e.evalIndex(n)
	case Scan:
		out, err = e.evalScan(n, nil)
	case Not:
		out, err = e.eval(n.Child)
		if err == nil {
			out.Not()
		}
	case And:
		out, err = e.evalAnd(n.Children, nil)
	case Or:
		out, err = e.evalOr(n.Children, nil)
	default:
		// Plan is an open interface; fail loudly rather than returning
		// (nil, nil) for a node type this executor does not know.
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
	if err != nil {
		return nil, err
	}
	if useCache {
		e.cache.put(key, out)
	}
	return out, nil
}

// evalMasked computes eval(p) ∩ mask, exploiting the mask to skip scan
// work. Masked results are not cached (they are mask-specific), but a
// cached unmasked result for any node — leaf or boolean subtree — is
// consulted first and intersected with the mask.
func (e *Engine) evalMasked(p Plan, mask *store.Bitset) (*store.Bitset, error) {
	switch p.(type) {
	case All:
		return mask.Clone(), nil
	case None:
		return e.st.Empty(), nil
	}
	if e.cache != nil && cacheable(p) {
		if b, ok := e.cache.get(p.Key()); ok {
			return b.And(mask), nil
		}
	}
	switch n := p.(type) {
	case Scan:
		return e.evalScan(n, mask)
	case Not:
		b, err := e.evalMasked(n.Child, mask)
		if err != nil {
			return nil, err
		}
		return mask.Clone().AndNot(b), nil
	case And:
		return e.evalAnd(n.Children, mask)
	case Or:
		return e.evalOr(n.Children, mask)
	default: // IndexScan: full evaluation is cheap and cache-friendly.
		b, err := e.eval(p)
		if err != nil {
			return nil, err
		}
		return b.And(mask), nil
	}
}

// evalAnd intersects children left to right (the optimizer put scan-free
// ones first); scan-bearing children only visit patients still in the
// accumulated candidate set, and an empty accumulator short-circuits.
func (e *Engine) evalAnd(children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	var acc *store.Bitset
	if mask != nil {
		acc = mask.Clone()
	} else {
		acc = e.st.All()
	}
	for _, c := range children {
		if acc.Count() == 0 {
			return acc, nil
		}
		if hasScan(c) {
			b, err := e.evalMasked(c, acc)
			if err != nil {
				return nil, err
			}
			acc = b
		} else {
			b, err := e.eval(c)
			if err != nil {
				return nil, err
			}
			acc.And(b)
		}
	}
	return acc, nil
}

// evalOr unions children; scan-bearing children only visit patients not
// already known to match (and, under a mask, inside the mask).
func (e *Engine) evalOr(children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	acc := e.st.Empty()
	for _, c := range children {
		if hasScan(c) {
			var rem *store.Bitset
			if mask != nil {
				rem = mask.Clone().AndNot(acc)
			} else {
				rem = acc.Clone().Not()
			}
			b, err := e.evalMasked(c, rem)
			if err != nil {
				return nil, err
			}
			acc.Or(b)
		} else {
			b, err := e.eval(c)
			if err != nil {
				return nil, err
			}
			if mask != nil {
				b.And(mask)
			}
			acc.Or(b)
		}
	}
	return acc, nil
}

// evalIndex answers an index leaf from every shard's inverted indexes.
func (e *Engine) evalIndex(n IndexScan) (*store.Bitset, error) {
	return e.perShard(func(sh shard) (*store.Bitset, error) {
		switch n.Op {
		case OpType:
			return sh.st.WithType(n.Type), nil
		case OpSource:
			return sh.st.WithSource(n.Source), nil
		default:
			if len(n.Systems) == 0 {
				return sh.st.WithCodeRegex("", n.Pattern)
			}
			out := sh.st.Empty()
			for _, sys := range n.Systems {
				b, err := sh.st.WithCodeRegex(sys, n.Pattern)
				if err != nil {
					return nil, err
				}
				out.Or(b)
			}
			return out, nil
		}
	})
}

// evalScan runs the fallback evaluator over each shard's histories,
// restricted to mask when given; shards with no candidates are skipped.
func (e *Engine) evalScan(n Scan, mask *store.Bitset) (*store.Bitset, error) {
	return e.perShard(func(sh shard) (*store.Bitset, error) {
		local := sh.st.Empty()
		if mask != nil && !mask.AnyInRange(sh.off, sh.off+sh.st.Len()) {
			return local, nil
		}
		for i, h := range sh.st.Collection().Histories() {
			if mask != nil && !mask.Get(sh.off+i) {
				continue
			}
			if n.Expr.Eval(h) {
				local.Set(i)
			}
		}
		return local, nil
	})
}

// perShard fans fn out over the shards on the worker pool and merges the
// local bitsets into one global bitset by shard offset.
func (e *Engine) perShard(fn func(sh shard) (*store.Bitset, error)) (*store.Bitset, error) {
	out := e.st.Empty()
	if len(e.shards) == 1 {
		local, err := fn(e.shards[0])
		if err != nil {
			return nil, err
		}
		return out.OrAt(local, 0), nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	var mu sync.Mutex
	var firstErr error
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			local, err := fn(sh)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if firstErr == nil {
				out.OrAt(local, sh.off)
			}
		}(sh)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
