package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// Options tunes the engine.
type Options struct {
	// Shards is the number of store shards; clamped to [1, patients].
	Shards int
	// Workers bounds concurrent per-shard evaluation. Defaults to
	// GOMAXPROCS.
	Workers int
	// CacheSize is the LRU capacity in cached sub-plan bitsets; 0
	// disables caching.
	CacheSize int
}

// DefaultOptions sizes the engine to the machine.
func DefaultOptions() Options {
	n := runtime.GOMAXPROCS(0)
	return Options{Shards: n, Workers: n, CacheSize: 128}
}

// shard is one contiguous slice of the population; local ordinal i is
// global ordinal off+i. Shards are store views sharing the global store's
// postings (sliced by ordinal range on demand), not dedicated index
// copies — construction is O(1) per shard and index memory is paid once.
type shard struct {
	v       *store.View
	off     int
	entries int // total entries in the slice, for the /stats breakdown
}

// shardMetric accumulates one shard's evaluation load for the /stats
// budget audits.
type shardMetric struct {
	queries atomic.Uint64
	nanos   atomic.Uint64
}

// boundCacheSize caps the LRU of index-derived scan bounds; bounds are
// pure functions of the immutable store, so a small fixed cache is safe.
const boundCacheSize = 64

// Engine executes compiled plans over a sharded store.
type Engine struct {
	st      *store.Store
	stats   *store.Stats
	shards  []shard
	metrics []shardMetric
	workers int
	cache   *planCache
	// boundCache memoizes scanBound results by Scan key, so the
	// interactive refinement loop re-intersects a cached bound instead
	// of re-walking the code vocabulary on every repeated scan.
	boundCache *planCache
}

// New builds an engine over an already-indexed global store. With more
// than one shard the population is split into contiguous chunks; each is
// a view onto the global store's postings, so scan evaluation fans out
// across a worker pool and merges per-shard bitsets by ordinal offset
// without duplicating any index memory.
func New(st *store.Store, opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		st:         st,
		stats:      st.Stats(),
		workers:    workers,
		cache:      newPlanCache(opts.CacheSize),
		boundCache: newPlanCache(boundCacheSize),
	}

	n := st.Len()
	shards := opts.Shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		v := st.Slice(0, n)
		e.shards = []shard{{v: v, off: 0, entries: v.Entries()}}
	} else {
		chunk := (n + shards - 1) / shards
		for off := 0; off < n; off += chunk {
			hi := min(off+chunk, n)
			v := st.Slice(off, hi)
			e.shards = append(e.shards, shard{v: v, off: off, entries: v.Entries()})
		}
	}
	e.metrics = make([]shardMetric, len(e.shards))
	return e
}

// Store returns the global store the engine answers over.
func (e *Engine) Store() *store.Store { return e.st }

// Stats returns the store statistics the planner estimates from.
func (e *Engine) Stats() *store.Stats { return e.stats }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// CacheStats reports plan-cache hits, misses and occupancy.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// ResetCache empties the plan cache and the scan-bound cache (benchmarks
// use this to measure cold executions).
func (e *Engine) ResetCache() {
	if e.cache != nil {
		e.cache.reset()
	}
	if e.boundCache != nil {
		e.boundCache.reset()
	}
}

// ShardStat reports one shard's cumulative scan-evaluation load since the
// engine was built. Index leaves are answered from the global postings
// and do not appear here.
type ShardStat struct {
	Shard    int
	Offset   int
	Patients int
	Entries  int
	Queries  uint64
	Nanos    uint64
}

// ShardStats returns per-shard evaluation counters for the 0.1 s budget
// audits (the webapp's /api/stats endpoint serves these).
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i := range e.shards {
		out[i] = ShardStat{
			Shard:    i,
			Offset:   e.shards[i].off,
			Patients: e.shards[i].v.Len(),
			Entries:  e.shards[i].entries,
			Queries:  e.metrics[i].queries.Load(),
			Nanos:    e.metrics[i].nanos.Load(),
		}
	}
	return out
}

// optimize runs the cost-based optimizer when statistics exist, the
// static one otherwise (empty store).
func (e *Engine) optimize(p Plan) Plan {
	if e.stats != nil && e.stats.Patients > 0 {
		return OptimizeWithStats(p, e.stats)
	}
	return Optimize(p)
}

// Execute compiles, optimizes and runs a query expression, returning the
// matching patients as a bitset in global ordinal space.
func (e *Engine) Execute(q query.Expr) (*store.Bitset, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return e.ExecutePlan(e.optimize(p))
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(p Plan) (*store.Bitset, error) { return e.eval(p) }

// Explain returns the statically optimized plan for an expression without
// running it. For cost-annotated plans, use Engine.Explain.
func Explain(q query.Expr) (Plan, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return Optimize(p), nil
}

// Select is Execute materialized as patient IDs in collection order.
func (e *Engine) Select(q query.Expr) ([]model.PatientID, error) {
	b, err := e.Execute(q)
	if err != nil {
		return nil, err
	}
	return e.st.IDsOf(b), nil
}

// eval computes the exact result of p over the whole population. Results
// of non-trivial nodes land in the LRU keyed by canonical sub-plan, so a
// refined query re-uses the unchanged parts of its predecessor. The
// returned bitset is owned by the caller.
func (e *Engine) eval(p Plan) (*store.Bitset, error) {
	switch p.(type) {
	case All:
		return e.st.All(), nil
	case None:
		return e.st.Empty(), nil
	}
	useCache := e.cache != nil && cacheable(p)
	key := ""
	if useCache {
		key = p.Key()
		if b, ok := e.cache.get(key); ok {
			return b, nil
		}
	}
	var out *store.Bitset
	var err error
	switch n := p.(type) {
	case IndexScan:
		out, err = e.evalIndex(n)
	case Scan:
		out, err = e.evalScan(n, nil)
	case Not:
		out, err = e.eval(n.Child)
		if err == nil {
			out.Not()
		}
	case And:
		out, err = e.evalAnd(n.Children, nil)
	case Or:
		out, err = e.evalOr(n.Children, nil)
	default:
		// Plan is an open interface; fail loudly rather than returning
		// (nil, nil) for a node type this executor does not know.
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
	if err != nil {
		return nil, err
	}
	if useCache {
		e.cache.put(key, out)
	}
	return out, nil
}

// evalMasked computes eval(p) ∩ mask, exploiting the mask to skip scan
// work. Masked results are not cached (they are mask-specific), but a
// cached unmasked result for any node — leaf or boolean subtree — is
// consulted first and intersected with the mask.
func (e *Engine) evalMasked(p Plan, mask *store.Bitset) (*store.Bitset, error) {
	switch p.(type) {
	case All:
		return mask.Clone(), nil
	case None:
		return e.st.Empty(), nil
	}
	if e.cache != nil && cacheable(p) {
		if b, ok := e.cache.get(p.Key()); ok {
			return b.And(mask), nil
		}
	}
	switch n := p.(type) {
	case Scan:
		return e.evalScan(n, mask)
	case Not:
		b, err := e.evalMasked(n.Child, mask)
		if err != nil {
			return nil, err
		}
		return mask.Clone().AndNot(b), nil
	case And:
		return e.evalAnd(n.Children, mask)
	case Or:
		return e.evalOr(n.Children, mask)
	default: // IndexScan: full evaluation is cheap and cache-friendly.
		b, err := e.eval(p)
		if err != nil {
			return nil, err
		}
		return b.And(mask), nil
	}
}

// evalAnd intersects children left to right (the optimizer ordered them
// most-selective-cheapest-first); scan-bearing children only visit
// patients still in the accumulated candidate set, and an empty
// accumulator short-circuits the remaining children entirely.
func (e *Engine) evalAnd(children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	var acc *store.Bitset
	if mask != nil {
		acc = mask.Clone()
	} else {
		acc = e.st.All()
	}
	for _, c := range children {
		if acc.Count() == 0 {
			return acc, nil
		}
		if hasScan(c) {
			b, err := e.evalMasked(c, acc)
			if err != nil {
				return nil, err
			}
			acc = b
		} else {
			b, err := e.eval(c)
			if err != nil {
				return nil, err
			}
			acc.And(b)
		}
	}
	return acc, nil
}

// evalOr unions children (the optimizer ordered them largest-first);
// scan-bearing children only visit patients not already known to match
// (and, under a mask, inside the mask), and the union short-circuits by
// absorption the moment it covers every candidate.
func (e *Engine) evalOr(children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	acc := e.st.Empty()
	target := e.st.Len()
	if mask != nil {
		target = mask.Count()
	}
	for _, c := range children {
		if acc.Count() >= target {
			return acc, nil // absorption: every candidate already matches
		}
		if hasScan(c) {
			var rem *store.Bitset
			if mask != nil {
				rem = mask.Clone().AndNot(acc)
			} else {
				rem = acc.Clone().Not()
			}
			b, err := e.evalMasked(c, rem)
			if err != nil {
				return nil, err
			}
			acc.Or(b)
		} else {
			b, err := e.eval(c)
			if err != nil {
				return nil, err
			}
			if mask != nil {
				b.And(mask)
			}
			acc.Or(b)
		}
	}
	return acc, nil
}

// evalIndex answers an index leaf straight from the global store's
// postings — with shards sharing the parent's postings there is nothing
// to fan out.
func (e *Engine) evalIndex(n IndexScan) (*store.Bitset, error) {
	switch n.Op {
	case OpType:
		return e.st.WithType(n.Type), nil
	case OpSource:
		return e.st.WithSource(n.Source), nil
	default:
		if len(n.Systems) == 0 {
			return e.st.WithCodeRegex("", n.Pattern)
		}
		out := e.st.Empty()
		for _, sys := range n.Systems {
			b, err := e.st.WithCodeRegex(sys, n.Pattern)
			if err != nil {
				return nil, err
			}
			out.Or(b)
		}
		return out, nil
	}
}

// evalScan runs the fallback evaluator over each shard's histories. The
// candidate set is the given mask intersected with the scan's
// index-derived bound (scanBound) — the driving predicate's postings —
// so whole shards whose per-shard cardinality for the driving predicate
// is zero are skipped without visiting a history, and an empty candidate
// set short-circuits before any fan-out.
func (e *Engine) evalScan(n Scan, mask *store.Bitset) (*store.Bitset, error) {
	eff := mask
	if bound := e.cachedBound(n); bound != nil {
		if mask != nil {
			bound.And(mask)
		}
		eff = bound
	}
	if eff != nil && eff.Count() == 0 {
		return e.st.Empty(), nil
	}
	return e.perShard(func(sh shard) (*store.Bitset, error) {
		local := sh.v.Empty()
		if eff != nil && !eff.AnyInRange(sh.off, sh.off+sh.v.Len()) {
			return local, nil
		}
		for i, h := range sh.v.Histories() {
			if eff != nil && !eff.Get(sh.off+i) {
				continue
			}
			if n.Expr.Eval(h) {
				local.Set(i)
			}
		}
		return local, nil
	})
}

// cachedBound returns a caller-owned copy of the scan's index-derived
// candidate bound, memoized by Scan key (opaque scans have per-compile
// keys, and the bound only depends on the typed predicate structure, so
// sharing by key is sound). Bound-less outcomes are memoized too — a
// zero-capacity sentinel — because deriving "no bound" can still walk
// the code vocabulary (e.g. a Code branch discarded by an unbounded
// sibling under Or).
func (e *Engine) cachedBound(n Scan) *store.Bitset {
	key := n.Key()
	if b, ok := e.boundCache.get(key); ok {
		if b.Len() == 0 && e.st.Len() != 0 {
			return nil // negative entry: no index bounds this scan
		}
		return b
	}
	bound := e.scanBound(n.Expr)
	if bound == nil {
		e.boundCache.put(key, store.NewBitset(0))
	} else {
		e.boundCache.put(key, bound)
	}
	return bound
}

// scanBound derives a candidate superset for a scanned expression from
// the inverted indexes: any patient the expression can match must carry
// at least one entry per index-answerable predicate it requires. Returns
// nil when no index bounds the expression. Soundness mirrors the
// evaluators exactly: Has needs ≥1 entry matching Pred; And/Sequence/
// During need every part satisfied; Or is bounded only when every branch
// is.
func (e *Engine) scanBound(x query.Expr) *store.Bitset {
	switch q := x.(type) {
	case query.Has:
		return e.predBound(q.Pred)
	case query.And:
		return intersectBounds(collectBounds(e, []query.Expr(q)))
	case query.Or:
		bounds := collectBounds(e, []query.Expr(q))
		if len(bounds) != len(q) {
			return nil // an unbounded branch unbounds the union
		}
		return unionBounds(bounds)
	case query.Sequence:
		var bounds []*store.Bitset
		for _, st := range q.Steps {
			if b := e.predBound(st.Pred); b != nil {
				bounds = append(bounds, b)
			}
		}
		return intersectBounds(bounds)
	case query.During:
		var bounds []*store.Bitset
		if b := e.predBound(q.Interval); b != nil {
			bounds = append(bounds, b)
		}
		if b := e.predBound(q.Event); b != nil {
			bounds = append(bounds, b)
		}
		return intersectBounds(bounds)
	default: // TrueExpr, Not, demographics, opaque expressions
		return nil
	}
}

// predBound returns the patients with ≥1 entry that could match the
// event predicate, from the inverted indexes; nil when un-indexable. An
// entry matching Code necessarily carries a non-zero code matching the
// pattern (Code.Match rejects code-less entries), so the code postings
// are a sound superset.
func (e *Engine) predBound(p query.EventPred) *store.Bitset {
	switch q := p.(type) {
	case *query.Code:
		b, err := e.st.WithCodeRegex(q.System, q.Pattern)
		if err != nil {
			return nil
		}
		return b
	case query.TypeIs:
		return e.st.WithType(model.Type(q))
	case query.SourceIs:
		return e.st.WithSource(model.Source(q))
	case query.AllOf:
		var bounds []*store.Bitset
		for _, c := range q {
			if b := e.predBound(c); b != nil {
				bounds = append(bounds, b)
			}
		}
		return intersectBounds(bounds)
	case query.AnyOf:
		var bounds []*store.Bitset
		for _, c := range q {
			b := e.predBound(c)
			if b == nil {
				return nil
			}
			bounds = append(bounds, b)
		}
		return unionBounds(bounds)
	default: // NotEv, KindIs, ValueBetween, InPeriod, TextMatch, MatchFunc…
		return nil
	}
}

func collectBounds(e *Engine, exprs []query.Expr) []*store.Bitset {
	var bounds []*store.Bitset
	for _, c := range exprs {
		if b := e.scanBound(c); b != nil {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

func intersectBounds(bounds []*store.Bitset) *store.Bitset {
	if len(bounds) == 0 {
		return nil
	}
	out := bounds[0]
	for _, b := range bounds[1:] {
		out.And(b)
	}
	return out
}

func unionBounds(bounds []*store.Bitset) *store.Bitset {
	if len(bounds) == 0 {
		return nil
	}
	out := bounds[0]
	for _, b := range bounds[1:] {
		out.Or(b)
	}
	return out
}

// perShard fans fn out over the shards on the worker pool, merges the
// local bitsets into one global bitset by shard offset, and accumulates
// per-shard wall time into the /stats counters.
func (e *Engine) perShard(fn func(sh shard) (*store.Bitset, error)) (*store.Bitset, error) {
	out := e.st.Empty()
	if len(e.shards) == 1 {
		t0 := time.Now()
		local, err := fn(e.shards[0])
		e.record(0, t0)
		if err != nil {
			return nil, err
		}
		return out.OrAt(local, 0), nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	var mu sync.Mutex
	var firstErr error
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			local, err := fn(sh)
			e.record(i, t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if firstErr == nil {
				out.OrAt(local, sh.off)
			}
		}(i, sh)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func (e *Engine) record(i int, t0 time.Time) {
	e.metrics[i].queries.Add(1)
	e.metrics[i].nanos.Add(uint64(time.Since(t0)))
}
