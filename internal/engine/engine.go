package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// Options tunes the engine.
type Options struct {
	// Shards is the number of store shards; clamped to [1, patients].
	// Ignored by NewFromBackends, where the backends fix the topology.
	Shards int
	// Workers bounds concurrent per-shard evaluation. Defaults to
	// GOMAXPROCS.
	Workers int
	// CacheSize is the LRU capacity in cached sub-plan bitsets; 0
	// disables caching.
	CacheSize int
	// Policy selects the failure semantics when a shard backend is
	// unreachable: PolicyStrict (default) fails the operation,
	// PolicyDegraded answers over the reachable shards and reports the
	// missing ones in the operation's QueryStatus.
	Policy Policy
	// QueryTimeout bounds every engine operation started without an
	// explicit context deadline (Execute, Select, Histories…). Zero
	// means no bound.
	QueryTimeout time.Duration
}

// DefaultOptions sizes the engine to the machine.
func DefaultOptions() Options {
	n := runtime.GOMAXPROCS(0)
	return Options{Shards: n, Workers: n, CacheSize: 128}
}

// shardMetric accumulates one backend's evaluation load for the /stats
// budget audits.
type shardMetric struct {
	queries  atomic.Uint64
	nanos    atomic.Uint64
	failures atomic.Uint64 // calls that returned an error
	skips    atomic.Uint64 // unavailability absorbed by PolicyDegraded
}

// boundCacheSize caps the LRU of index-derived scan bounds; bounds are
// pure functions of the immutable store, so a small fixed cache is safe.
const boundCacheSize = 64

// Engine executes compiled plans over a set of shard backends.
//
// Built with New, the backends are in-process views over one global store
// and the executor exploits that locality: index leaves are answered
// straight from the global postings, scan candidates are bounded by them,
// and only scan evaluation fans out. Built with NewFromBackends, the
// engine is a coordinator over arbitrary (typically remote) backends: it
// plans from the backends' merged statistics, pushes whole plans down to
// every shard in one round, and merges the shard-local results in fixed
// shard order.
type Engine struct {
	st       *store.Store // nil for a coordinator over remote backends
	stats    *store.Stats
	n        int // total population
	entries  int // total entries across backends
	backends []ShardBackend
	metrics  []shardMetric
	workers  int
	policy   Policy
	timeout  time.Duration // default per-operation budget; 0 = unbounded
	cache    *planCache
	// boundCache memoizes scanBound results by Scan key, so the
	// interactive refinement loop re-intersects a cached bound instead
	// of re-walking the code vocabulary on every repeated scan.
	boundCache *planCache
	// fb records the true cardinality of every evaluated plan node; the
	// optimizer's cost model reads it back on later planning passes
	// (adaptive feedback planning, see feedback.go).
	fb *feedback
	// plans memoizes optimized plans by (expression, feedback epoch).
	plans *planMemo
}

// New builds an engine over an already-indexed global store. With more
// than one shard the population is split into contiguous chunks; each is
// a local backend viewing the global store's postings, so scan evaluation
// fans out across a worker pool and merges per-shard bitsets by ordinal
// offset without duplicating any index memory.
func New(st *store.Store, opts Options) *Engine {
	e := &Engine{
		st:         st,
		stats:      st.Stats(),
		n:          st.Len(),
		policy:     opts.Policy,
		timeout:    opts.QueryTimeout,
		workers:    normalizeWorkers(opts.Workers),
		cache:      newPlanCache(opts.CacheSize),
		boundCache: newPlanCache(boundCacheSize),
		fb:         newFeedback(feedbackSize),
		plans:      newPlanMemo(planMemoSize),
	}
	n := st.Len()
	shards := opts.Shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		e.backends = []ShardBackend{NewLocalBackend(st.Slice(0, n), 0)}
	} else {
		chunk := (n + shards - 1) / shards
		for off := 0; off < n; off += chunk {
			e.backends = append(e.backends,
				NewLocalBackend(st.Slice(off, min(off+chunk, n)), len(e.backends)))
		}
	}
	e.finishInit()
	return e
}

// NewFromBackends builds a coordinating engine over an explicit backend
// set — the distributed execution path. The backends must tile the
// population: sorted by offset they have to cover [0, N) contiguously,
// the same ordinal-contiguous boundaries the local engine shards on.
// Statistics are fetched from every backend and merged (exact: patient
// counts are additive over disjoint shards) so cost-based planning sees
// the same cardinalities a single global store would collect.
func NewFromBackends(backends []ShardBackend, opts Options) (*Engine, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("engine: no shard backends")
	}
	bs := append([]ShardBackend(nil), backends...)
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].Meta().Offset < bs[j].Meta().Offset })
	e := &Engine{
		backends:   bs,
		policy:     opts.Policy,
		timeout:    opts.QueryTimeout,
		workers:    normalizeWorkers(opts.Workers),
		cache:      newPlanCache(opts.CacheSize),
		boundCache: newPlanCache(boundCacheSize),
		fb:         newFeedback(feedbackSize),
		plans:      newPlanMemo(planMemoSize),
	}
	for _, b := range bs {
		m := b.Meta()
		if m.Offset != e.n {
			return nil, fmt.Errorf("engine: backend %q covers ordinals [%d, %d), want start %d (shards must tile the population contiguously)",
				m.Backend, m.Offset, m.Offset+m.Patients, e.n)
		}
		e.n += m.Patients
	}
	// Merged statistics give the planner population-level cardinality
	// bounds; fetch per shard, concurrently. Construction is strict under
	// either policy: planning from a topology whose statistics never
	// loaded would degrade every query silently.
	ctx, cancel := e.opCtx(context.Background())
	defer cancel()
	parts := make([]*store.Stats, len(bs))
	errs := make([]error, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b ShardBackend) {
			defer wg.Done()
			parts[i], errs[i] = b.Stats(ctx)
		}(i, b)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: stats from backend %q: %w", bs[i].Meta().Backend, err)
		}
	}
	e.stats = store.MergeStats(parts...)
	e.finishInit()
	return e, nil
}

func (e *Engine) finishInit() {
	e.metrics = make([]shardMetric, len(e.backends))
	for _, b := range e.backends {
		e.entries += b.Meta().Entries
	}
}

func normalizeWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Store returns the global store a locally built engine answers over; nil
// for a coordinator over remote backends.
func (e *Engine) Store() *store.Store { return e.st }

// Stats returns the statistics the planner estimates from: the store's
// own for a local engine, the backends' merged cardinalities for a
// coordinator.
func (e *Engine) Stats() *store.Stats { return e.stats }

// Patients returns the total population across all backends.
func (e *Engine) Patients() int { return e.n }

// TotalEntries returns the total entry count across all backends.
func (e *Engine) TotalEntries() int { return e.entries }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.backends) }

// Policy returns the engine's failure-semantics policy.
func (e *Engine) Policy() Policy { return e.policy }

// opCtx applies the engine's default query budget to a context that does
// not already carry a deadline. The returned cancel must always be
// called.
func (e *Engine) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, e.timeout)
		}
	}
	return context.WithCancel(ctx)
}

// BackendInfo returns every backend's shard metadata, in offset order.
func (e *Engine) BackendInfo() []ShardMeta {
	out := make([]ShardMeta, len(e.backends))
	for i, b := range e.backends {
		out[i] = b.Meta()
	}
	return out
}

// Close releases the backends (network connections for remote shards;
// a no-op for local views).
func (e *Engine) Close() error {
	var errs []error
	for _, b := range e.backends {
		if err := b.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// CacheStats reports plan-cache hits, misses and occupancy.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// ResetCache empties the plan cache, the scan-bound cache, the recorded
// execution feedback and the plan memo (benchmarks use this to measure
// cold executions — cold statistics included).
func (e *Engine) ResetCache() {
	if e.cache != nil {
		e.cache.reset()
	}
	if e.boundCache != nil {
		e.boundCache.reset()
	}
	if e.fb != nil {
		e.fb.reset()
	}
	if e.plans != nil {
		e.plans.reset()
	}
}

// empty returns a fresh empty bitset over the whole population.
func (e *Engine) empty() *store.Bitset { return store.NewBitset(e.n) }

// all returns a bitset with every patient set.
func (e *Engine) all() *store.Bitset { return e.empty().Not() }

// ShardStat reports one backend's cumulative evaluation load since the
// engine was built: every plan fragment the executor fanned out to the
// backend, timed uniformly at the call site, whatever the transport. For
// a locally built engine index leaves are answered from the global
// postings without touching a backend and do not appear here.
type ShardStat struct {
	Shard    int
	Offset   int
	Patients int
	Entries  int
	// Backend names the transport ("local", "remote(addr)",
	// "replicas(…)").
	Backend string
	Queries uint64
	Nanos   uint64
	// Failures counts calls to this backend that returned an error
	// (after any replica-level failover).
	Failures uint64
	// Skipped counts operations where PolicyDegraded absorbed this
	// backend's unavailability — answers that were served without it.
	Skipped uint64
}

// ShardStats returns per-backend evaluation counters for the 0.1 s budget
// audits (the webapp's /api/stats endpoint serves these).
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.backends))
	for i, b := range e.backends {
		m := b.Meta()
		out[i] = ShardStat{
			Shard:    m.Shard,
			Offset:   m.Offset,
			Patients: m.Patients,
			Entries:  m.Entries,
			Backend:  m.Backend,
			Queries:  e.metrics[i].queries.Load(),
			Nanos:    e.metrics[i].nanos.Load(),
			Failures: e.metrics[i].failures.Load(),
			Skipped:  e.metrics[i].skips.Load(),
		}
	}
	return out
}

// ShardHealth is one backend's live health as the engine sees it: for a
// replica set, the per-member states the health checker maintains; for a
// plain backend, a single synthetic member that is healthy as long as it
// exists (plain backends have no checker — failures surface per call).
type ShardHealth struct {
	Shard    int             `json:"shard"`
	Backend  string          `json:"backend"`
	Healthy  bool            `json:"healthy"`
	Replicas []ReplicaHealth `json:"replicas,omitempty"`
}

// Health reports per-shard backend health, in offset order.
func (e *Engine) Health() []ShardHealth {
	out := make([]ShardHealth, len(e.backends))
	for i, b := range e.backends {
		m := b.Meta()
		h := ShardHealth{Shard: m.Shard, Backend: m.Backend, Healthy: true}
		if rb, ok := b.(*ReplicaBackend); ok {
			h.Healthy = rb.Healthy()
			h.Replicas = rb.Health()
		}
		out[i] = h
	}
	return out
}

// optimize runs the cost-based optimizer (estimates corrected by
// execution feedback) when statistics exist, the static one otherwise
// (empty store).
func (e *Engine) optimize(p Plan) Plan {
	if e.stats != nil && e.stats.Patients > 0 {
		return optimizeNode(p, newFeedbackCostModel(e.stats, e.fb))
	}
	return Optimize(p)
}

// plan returns the optimized form of p, memoized by (canonical
// expression key, feedback epoch). When execution feedback advances the
// epoch the expression is re-planned under the corrected estimates; the
// re-plan lands under the new epoch's key, never evicting the plan the
// previous epoch produced — an in-flight execution may still hold it,
// and reverting feedback restores it for free. Opaque plans (per-compile
// keys) are planned fresh every time.
func (e *Engine) plan(p Plan) Plan {
	if e.plans == nil || e.fb == nil || !cacheable(p) {
		return e.optimize(p)
	}
	key := planMemoKey(p.Key(), e.fb.epochNow())
	if op, ok := e.plans.get(key); ok {
		return op
	}
	op := e.optimize(p)
	e.plans.put(key, op)
	return op
}

// FeedbackEpoch reports the planner's statistics epoch: it advances
// whenever execution observes a cardinality the cost model did not
// already know, and re-planning any expression under a new epoch may
// produce a different (better-informed) plan.
func (e *Engine) FeedbackEpoch() uint64 {
	if e.fb == nil {
		return 0
	}
	return e.fb.epochNow()
}

// Execute compiles, optimizes and runs a query expression, returning the
// matching patients as a bitset in global ordinal space. Under
// PolicyDegraded the result may be partial; use ExecuteStatus to learn
// which shards contributed.
func (e *Engine) Execute(q query.Expr) (*store.Bitset, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute under a caller-supplied context: its deadline
// bounds the whole evaluation, threaded down to every backend call.
func (e *Engine) ExecuteContext(ctx context.Context, q query.Expr) (*store.Bitset, error) {
	b, _, err := e.ExecuteStatus(ctx, q)
	return b, err
}

// ExecuteStatus is ExecuteContext plus the completeness report: under
// PolicyDegraded the QueryStatus names the shards that did not
// contribute (under PolicyStrict it is always complete — incompleteness
// is an error).
func (e *Engine) ExecuteStatus(ctx context.Context, q query.Expr) (*store.Bitset, QueryStatus, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, QueryStatus{}, err
	}
	return e.ExecutePlanStatus(ctx, e.plan(p))
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(p Plan) (*store.Bitset, error) {
	b, _, err := e.ExecutePlanStatus(context.Background(), p)
	return b, err
}

// ExecutePlanStatus runs an already-built plan under a context, reporting
// completeness like ExecuteStatus.
func (e *Engine) ExecutePlanStatus(ctx context.Context, p Plan) (*store.Bitset, QueryStatus, error) {
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	b, missing, err := e.eval(ctx, p)
	if err != nil {
		return nil, QueryStatus{}, err
	}
	return b, e.statusFromMissing(missing), nil
}

// Explain returns the statically optimized plan for an expression without
// running it. For cost-annotated plans, use Engine.Explain.
func Explain(q query.Expr) (Plan, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return Optimize(p), nil
}

// Select is Execute materialized as patient IDs in collection order.
func (e *Engine) Select(q query.Expr) ([]model.PatientID, error) {
	b, err := e.Execute(q)
	if err != nil {
		return nil, err
	}
	return e.IDsOf(b)
}

// IDsOf materializes a global-ordinal bitset as patient IDs in collection
// order. A local engine reads them off the store; a coordinator asks each
// backend for its slice and concatenates in fixed shard order. The
// mapping is strict under either policy — but a bitset produced by a
// degraded query has no bits on its missing shards, so those backends
// are never asked.
func (e *Engine) IDsOf(b *store.Bitset) ([]model.PatientID, error) {
	if e.st != nil {
		return e.st.IDsOf(b), nil
	}
	ctx, cancel := e.opCtx(context.Background())
	defer cancel()
	parts := make([][]model.PatientID, len(e.backends))
	errs := make([]error, len(e.backends))
	var wg sync.WaitGroup
	for i, bk := range e.backends {
		m := bk.Meta()
		if !b.AnyInRange(m.Offset, m.Offset+m.Patients) {
			continue
		}
		wg.Add(1)
		go func(i int, bk ShardBackend, m ShardMeta) {
			defer wg.Done()
			parts[i], errs[i] = bk.IDsOf(ctx, b.SliceRange(m.Offset, m.Offset+m.Patients))
		}(i, bk, m)
	}
	wg.Wait()
	out := make([]model.PatientID, 0, b.Count())
	for i := range parts {
		if errs[i] != nil {
			return nil, fmt.Errorf("engine: ids from backend %q: %w", e.backends[i].Meta().Backend, errs[i])
		}
		out = append(out, parts[i]...)
	}
	return out, nil
}

// eval computes the exact result of p over the whole population, plus the
// indexes of any backends PolicyDegraded absorbed (always empty under
// PolicyStrict — their errors fail the evaluation instead). Results of
// non-trivial nodes land in the LRU keyed by canonical sub-plan, so a
// refined query re-uses the unchanged parts of its predecessor — but
// only complete results: a degraded answer is never cached and never
// feeds the planner's cardinality feedback, both would poison later
// complete executions. The returned bitset is owned by the caller.
func (e *Engine) eval(ctx context.Context, p Plan) (*store.Bitset, []int, error) {
	switch p.(type) {
	case All:
		return e.all(), nil, nil
	case None:
		return e.empty(), nil, nil
	}
	useCache := e.cache != nil && cacheable(p)
	key := ""
	if useCache || e.fb != nil {
		key = p.Key()
		if useCache {
			if b, ok := e.cache.get(key); ok {
				return b, nil, nil
			}
		}
	}
	var out *store.Bitset
	var missing []int
	var err error
	if e.st == nil {
		// Coordinator: every expression is per-history, so a whole plan
		// distributes over the shards — one fan-out round, each backend
		// evaluating (and locally re-optimizing) the full plan over its
		// slice, merged in fixed shard order.
		out, missing, err = e.fanout(ctx, func(ctx context.Context, _ int, b ShardBackend) (*store.Bitset, error) {
			return b.EvalPlan(ctx, p, nil)
		})
	} else {
		switch n := p.(type) {
		case IndexScan:
			out, err = e.evalIndex(n)
		case Scan:
			out, err = e.evalScan(ctx, n, nil)
		case Not:
			out, _, err = e.eval(ctx, n.Child)
			if err == nil {
				out.Not()
			}
		case And:
			out, err = e.evalAnd(ctx, n.Children, nil)
		case Or:
			out, err = e.evalOr(ctx, n.Children, nil)
		default:
			// Plan is an open interface; fail loudly rather than returning
			// (nil, nil) for a node type this executor does not know.
			return nil, nil, fmt.Errorf("engine: unknown plan node %T", p)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if len(missing) > 0 {
		return out, missing, nil
	}
	if e.fb != nil {
		e.fb.observe(key, out.Count())
	}
	if useCache {
		e.cache.put(key, out)
	}
	return out, nil, nil
}

// evalMasked computes eval(p) ∩ mask, exploiting the mask to skip scan
// work. Masked results are not cached (they are mask-specific), but a
// cached unmasked result for any node — leaf or boolean subtree — is
// consulted first and intersected with the mask.
func (e *Engine) evalMasked(ctx context.Context, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	switch p.(type) {
	case All:
		return mask.Clone(), nil
	case None:
		return e.empty(), nil
	}
	if e.cache != nil && cacheable(p) {
		if b, ok := e.cache.get(p.Key()); ok {
			return b.And(mask), nil
		}
	}
	switch n := p.(type) {
	case Scan:
		return e.evalScan(ctx, n, mask)
	case Not:
		b, err := e.evalMasked(ctx, n.Child, mask)
		if err != nil {
			return nil, err
		}
		return mask.Clone().AndNot(b), nil
	case And:
		return e.evalAnd(ctx, n.Children, mask)
	case Or:
		return e.evalOr(ctx, n.Children, mask)
	default: // IndexScan: full evaluation is cheap and cache-friendly.
		b, _, err := e.eval(ctx, p)
		if err != nil {
			return nil, err
		}
		return b.And(mask), nil
	}
}

// evalAnd intersects children left to right (the optimizer ordered them
// most-selective-cheapest-first); scan-bearing children only visit
// patients still in the accumulated candidate set, and an empty
// accumulator short-circuits the remaining children entirely.
func (e *Engine) evalAnd(ctx context.Context, children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	var acc *store.Bitset
	if mask != nil {
		acc = mask.Clone()
	} else {
		acc = e.all()
	}
	for i, c := range children {
		if acc.Count() == 0 {
			return acc, nil
		}
		if hasScan(c) {
			b, err := e.evalMasked(ctx, c, acc)
			if err != nil {
				return nil, err
			}
			acc = b
		} else {
			b, _, err := e.eval(ctx, c)
			if err != nil {
				return nil, err
			}
			acc.And(b)
		}
		// Unmasked, the accumulator after child i is the true cardinality
		// of the conjunction prefix — for i = 0, of the child itself.
		// Record every prefix (eval records the full node): these
		// observations are what lets the join-order DP see through
		// correlated predicates, and the canonical And key is
		// order-insensitive, so a prefix recorded under one order is
		// found again whatever order is tried next.
		if mask == nil && e.fb != nil && i < len(children)-1 {
			if i == 0 {
				e.fb.observe(c.Key(), acc.Count())
			} else {
				e.fb.observe(And{Children: children[:i+1]}.Key(), acc.Count())
			}
		}
	}
	return acc, nil
}

// evalOr unions children (the optimizer ordered them largest-first);
// scan-bearing children only visit patients not already known to match
// (and, under a mask, inside the mask), and the union short-circuits by
// absorption the moment it covers every candidate.
func (e *Engine) evalOr(ctx context.Context, children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	acc := e.empty()
	target := e.n
	if mask != nil {
		target = mask.Count()
	}
	for _, c := range children {
		if acc.Count() >= target {
			return acc, nil // absorption: every candidate already matches
		}
		if hasScan(c) {
			var rem *store.Bitset
			if mask != nil {
				rem = mask.Clone().AndNot(acc)
			} else {
				rem = acc.Clone().Not()
			}
			b, err := e.evalMasked(ctx, c, rem)
			if err != nil {
				return nil, err
			}
			acc.Or(b)
		} else {
			b, _, err := e.eval(ctx, c)
			if err != nil {
				return nil, err
			}
			if mask != nil {
				b.And(mask)
			}
			acc.Or(b)
		}
	}
	return acc, nil
}

// evalIndex answers an index leaf straight from the global store's
// postings — with local backends sharing the parent's postings there is
// nothing to fan out. (A coordinator has no global postings; index leaves
// reach its backends inside the pushed-down plan instead.)
func (e *Engine) evalIndex(n IndexScan) (*store.Bitset, error) {
	switch n.Op {
	case OpType:
		return e.st.WithType(n.Type), nil
	case OpSource:
		return e.st.WithSource(n.Source), nil
	default:
		if len(n.Systems) == 0 {
			return e.st.WithCodeRegex("", n.Pattern)
		}
		out := e.empty()
		for _, sys := range n.Systems {
			b, err := e.st.WithCodeRegex(sys, n.Pattern)
			if err != nil {
				return nil, err
			}
			out.Or(b)
		}
		return out, nil
	}
}

// evalScan runs the fallback evaluator over each backend's shard. The
// candidate set is the given mask intersected with the scan's
// index-derived bound (scanBound) — the driving predicate's postings —
// so whole shards whose per-shard cardinality for the driving predicate
// is zero are skipped without a backend call, and an empty candidate set
// short-circuits before any fan-out. Each backend receives its slice of
// the candidates in shard-local ordinal space.
func (e *Engine) evalScan(ctx context.Context, n Scan, mask *store.Bitset) (*store.Bitset, error) {
	eff := mask
	if bound := e.cachedBound(n); bound != nil {
		if mask != nil {
			bound.And(mask)
		}
		eff = bound
	}
	if eff != nil && eff.Count() == 0 {
		return e.empty(), nil
	}
	// Local scan fan-out is strict regardless of policy: these backends
	// are in-process views, an error here is a bug, not an outage.
	out, _, err := e.strictFanout(ctx, func(ctx context.Context, _ int, b ShardBackend) (*store.Bitset, error) {
		m := b.Meta()
		var local *store.Bitset
		if eff != nil {
			if !eff.AnyInRange(m.Offset, m.Offset+m.Patients) {
				return store.NewBitset(m.Patients), nil
			}
			local = eff.SliceRange(m.Offset, m.Offset+m.Patients)
		}
		return b.EvalPlan(ctx, n, local)
	})
	return out, err
}

// cachedBound returns a caller-owned copy of the scan's index-derived
// candidate bound, memoized by Scan key (opaque scans have per-compile
// keys, and the bound only depends on the typed predicate structure, so
// sharing by key is sound). Bound-less outcomes are memoized too — a
// zero-capacity sentinel — because deriving "no bound" can still walk
// the code vocabulary (e.g. a Code branch discarded by an unbounded
// sibling under Or).
func (e *Engine) cachedBound(n Scan) *store.Bitset {
	key := n.Key()
	if b, ok := e.boundCache.get(key); ok {
		if b.Len() == 0 && e.n != 0 {
			return nil // negative entry: no index bounds this scan
		}
		return b
	}
	bound := e.scanBound(n.Expr)
	if bound == nil {
		e.boundCache.put(key, store.NewBitset(0))
	} else {
		e.boundCache.put(key, bound)
	}
	return bound
}

// scanBound derives a candidate superset for a scanned expression from
// the inverted indexes: any patient the expression can match must carry
// at least one entry per index-answerable predicate it requires. Returns
// nil when no index bounds the expression. Soundness mirrors the
// evaluators exactly: Has needs ≥1 entry matching Pred; And/Sequence/
// During need every part satisfied; Or is bounded only when every branch
// is.
func (e *Engine) scanBound(x query.Expr) *store.Bitset {
	switch q := x.(type) {
	case query.Has:
		return e.predBound(q.Pred)
	case query.And:
		return intersectBounds(collectBounds(e, []query.Expr(q)))
	case query.Or:
		bounds := collectBounds(e, []query.Expr(q))
		if len(bounds) != len(q) {
			return nil // an unbounded branch unbounds the union
		}
		return unionBounds(bounds)
	case query.Sequence:
		var bounds []*store.Bitset
		for _, st := range q.Steps {
			if b := e.predBound(st.Pred); b != nil {
				bounds = append(bounds, b)
			}
		}
		return intersectBounds(bounds)
	case query.During:
		var bounds []*store.Bitset
		if b := e.predBound(q.Interval); b != nil {
			bounds = append(bounds, b)
		}
		if b := e.predBound(q.Event); b != nil {
			bounds = append(bounds, b)
		}
		return intersectBounds(bounds)
	default: // TrueExpr, Not, demographics, opaque expressions
		return nil
	}
}

// predBound returns the patients with ≥1 entry that could match the
// event predicate, from the inverted indexes; nil when un-indexable. An
// entry matching Code necessarily carries a non-zero code matching the
// pattern (Code.Match rejects code-less entries), so the code postings
// are a sound superset.
func (e *Engine) predBound(p query.EventPred) *store.Bitset {
	switch q := p.(type) {
	case *query.Code:
		b, err := e.st.WithCodeRegex(q.System, q.Pattern)
		if err != nil {
			return nil
		}
		return b
	case query.TypeIs:
		return e.st.WithType(model.Type(q))
	case query.SourceIs:
		return e.st.WithSource(model.Source(q))
	case query.AllOf:
		var bounds []*store.Bitset
		for _, c := range q {
			if b := e.predBound(c); b != nil {
				bounds = append(bounds, b)
			}
		}
		return intersectBounds(bounds)
	case query.AnyOf:
		var bounds []*store.Bitset
		for _, c := range q {
			b := e.predBound(c)
			if b == nil {
				return nil
			}
			bounds = append(bounds, b)
		}
		return unionBounds(bounds)
	default: // NotEv, KindIs, ValueBetween, InPeriod, TextMatch, MatchFunc…
		return nil
	}
}

func collectBounds(e *Engine, exprs []query.Expr) []*store.Bitset {
	var bounds []*store.Bitset
	for _, c := range exprs {
		if b := e.scanBound(c); b != nil {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

func intersectBounds(bounds []*store.Bitset) *store.Bitset {
	if len(bounds) == 0 {
		return nil
	}
	out := bounds[0]
	for _, b := range bounds[1:] {
		out.And(b)
	}
	return out
}

func unionBounds(bounds []*store.Bitset) *store.Bitset {
	if len(bounds) == 0 {
		return nil
	}
	out := bounds[0]
	for _, b := range bounds[1:] {
		out.Or(b)
	}
	return out
}

// fanout runs fn against every backend on the worker pool, records each
// backend's wall time into the /stats counters — uniformly, whatever the
// transport — and merges the shard-local bitsets into one global bitset
// in fixed shard order, honoring the engine's policy. Under PolicyStrict
// any backend error fails the whole evaluation: a partial cohort is
// never returned. Under PolicyDegraded a backend whose error is
// transport-level unavailability is skipped — its ordinal range stays
// zero in the merged bitset and its index is reported in missing — while
// any other error (a semantic failure, a wrong-sized result) still fails
// the evaluation under either policy.
func (e *Engine) fanout(ctx context.Context, fn func(ctx context.Context, i int, b ShardBackend) (*store.Bitset, error)) (*store.Bitset, []int, error) {
	return e.fanoutPolicy(ctx, e.policy, fn)
}

// strictFanout is fanout pinned to PolicyStrict, for operations that must
// not degrade whatever the engine's policy.
func (e *Engine) strictFanout(ctx context.Context, fn func(ctx context.Context, i int, b ShardBackend) (*store.Bitset, error)) (*store.Bitset, []int, error) {
	return e.fanoutPolicy(ctx, PolicyStrict, fn)
}

func (e *Engine) fanoutPolicy(ctx context.Context, policy Policy, fn func(ctx context.Context, i int, b ShardBackend) (*store.Bitset, error)) (*store.Bitset, []int, error) {
	locals := make([]*store.Bitset, len(e.backends))
	errs := make([]error, len(e.backends))
	if len(e.backends) == 1 {
		t0 := time.Now()
		locals[0], errs[0] = fn(ctx, 0, e.backends[0])
		e.record(0, t0, errs[0])
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.workers)
		for i, b := range e.backends {
			wg.Add(1)
			go func(i int, b ShardBackend) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				t0 := time.Now()
				locals[i], errs[i] = fn(ctx, i, b)
				e.record(i, t0, errs[i])
			}(i, b)
		}
		wg.Wait()
	}
	var missing []int
	for i, err := range errs {
		if err == nil {
			continue
		}
		m := e.backends[i].Meta()
		if policy == PolicyDegraded && IsUnavailable(err) && ctx.Err() == nil {
			// Absorb the outage: this shard contributes nothing, and the
			// caller is told exactly which one. (A dead overall context is
			// not an outage — the caller's budget expired, fail loudly.)
			e.metrics[i].skips.Add(1)
			missing = append(missing, i)
			locals[i] = nil
			continue
		}
		return nil, nil, fmt.Errorf("engine: shard %d (%s): %w", m.Shard, m.Backend, err)
	}
	out := e.empty()
	for i, local := range locals {
		if local == nil {
			continue // degraded-away shard: its range stays zero
		}
		m := e.backends[i].Meta()
		if local.Len() != m.Patients {
			return nil, nil, fmt.Errorf("engine: shard %d (%s): result covers %d patients, shard has %d",
				m.Shard, m.Backend, local.Len(), m.Patients)
		}
		out.OrAt(local, m.Offset)
	}
	return out, missing, nil
}

func (e *Engine) record(i int, t0 time.Time, err error) {
	e.metrics[i].queries.Add(1)
	e.metrics[i].nanos.Add(uint64(time.Since(t0)))
	if err != nil {
		e.metrics[i].failures.Add(1)
	}
}
