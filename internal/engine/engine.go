package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// Options tunes the engine.
type Options struct {
	// Shards is the number of store shards; clamped to [1, patients].
	// Ignored by NewFromBackends, where the backends fix the topology.
	Shards int
	// Workers bounds concurrent per-shard evaluation. Defaults to
	// GOMAXPROCS.
	Workers int
	// CacheSize is the LRU capacity in cached sub-plan bitsets; 0
	// disables caching.
	CacheSize int
	// Policy selects the failure semantics when a shard backend is
	// unreachable: PolicyStrict (default) fails the operation,
	// PolicyDegraded answers over the reachable shards and reports the
	// missing ones in the operation's QueryStatus.
	Policy Policy
	// QueryTimeout bounds every engine operation started without an
	// explicit context deadline (Execute, Select, Histories…). Zero
	// means no bound.
	QueryTimeout time.Duration
}

// DefaultOptions sizes the engine to the machine.
func DefaultOptions() Options {
	n := runtime.GOMAXPROCS(0)
	return Options{Shards: n, Workers: n, CacheSize: 128}
}

// shardMetric accumulates one backend's evaluation load for the /stats
// budget audits.
type shardMetric struct {
	queries  atomic.Uint64
	nanos    atomic.Uint64
	failures atomic.Uint64 // calls that returned an error
	skips    atomic.Uint64 // unavailability absorbed by PolicyDegraded
}

// boundCacheSize caps the LRU of index-derived scan bounds; bounds are
// pure functions of one store generation (the cache is epoched by it), so
// a small fixed cache is safe.
const boundCacheSize = 64

// topo is the engine's execution topology pinned to one store generation:
// the shard views, backends and statistics every evaluation of that
// generation runs against. It is immutable once published; when the store
// generation advances, topoNow builds a fresh topo on the side and swaps
// it in, so one query always runs — start to finish — against a single
// consistent generation while appends keep landing.
type topo struct {
	gen      uint64
	n        int // total population
	entries  int // total entries across backends
	stats    *store.Stats
	view     *store.View // pinned full-population view; nil for a coordinator
	backends []ShardBackend
	metrics  []shardMetric
}

// empty returns a fresh empty bitset over the topology's population.
func (t *topo) empty() *store.Bitset { return store.NewBitset(t.n) }

// all returns a bitset with every patient of the topology set.
func (t *topo) all() *store.Bitset { return t.empty().Not() }

// Engine executes compiled plans over a set of shard backends.
//
// Built with New, the backends are in-process views over one global store
// and the executor exploits that locality: index leaves are answered
// straight from the pinned postings, scan candidates are bounded by them,
// and only scan evaluation fans out. Built with NewFromBackends, the
// engine is a coordinator over arbitrary (typically remote) backends: it
// plans from the backends' merged statistics, pushes whole plans down to
// every shard in one round, and merges the shard-local results in fixed
// shard order.
//
// A local engine follows its store's live-ingest generation: every
// operation pins the current topology first, and everything derived from
// store contents — plan cache, scan-bound cache, planner feedback, plan
// memo — is epoched by the generation, discarded on advance rather than
// ever answering for a population it no longer describes.
type Engine struct {
	st     *store.Store // nil for a coordinator over remote backends
	shards int          // configured shard count (local engines re-shard on rebuild)

	topo   atomic.Pointer[topo]
	topoMu sync.Mutex // serializes topology rebuilds on generation advance

	workers int
	policy  Policy
	timeout time.Duration // default per-operation budget; 0 = unbounded
	cache   *planCache
	// boundCache memoizes scanBound results by Scan key, so the
	// interactive refinement loop re-intersects a cached bound instead
	// of re-walking the code vocabulary on every repeated scan.
	boundCache *planCache
	// fb records the true cardinality of every evaluated plan node; the
	// optimizer's cost model reads it back on later planning passes
	// (adaptive feedback planning, see feedback.go).
	fb *feedback
	// plans memoizes optimized plans by (expression, feedback epoch,
	// store generation).
	plans *planMemo
	// ws holds the materialized cohorts (cohorts.go), epoched by store
	// generation like the caches — but NOT cleared by ResetCache: a saved
	// cohort is user state, not derived state, and benchmark cold arms
	// must be able to drop the caches without losing the workspace.
	ws *workspace
}

// New builds an engine over an already-indexed global store. With more
// than one shard the population is split into contiguous chunks; each is
// a local backend viewing the store's pinned postings, so scan evaluation
// fans out across a worker pool and merges per-shard bitsets by ordinal
// offset without duplicating any index memory.
func New(st *store.Store, opts Options) *Engine {
	e := &Engine{
		st:         st,
		shards:     opts.Shards,
		policy:     opts.Policy,
		timeout:    opts.QueryTimeout,
		workers:    normalizeWorkers(opts.Workers),
		cache:      newPlanCache(opts.CacheSize),
		boundCache: newPlanCache(boundCacheSize),
		fb:         newFeedback(feedbackSize),
		plans:      newPlanMemo(planMemoSize),
		ws:         newWorkspace(),
	}
	e.topo.Store(e.buildTopo(st.Pin()))
	return e
}

// buildTopo carves the configured shard layout out of one pinned store
// revision. Per-backend metrics start fresh with each topology.
func (e *Engine) buildTopo(pin *store.View) *topo {
	n := pin.Len()
	t := &topo{
		gen:     pin.Generation(),
		n:       n,
		entries: pin.Entries(),
		stats:   pin.Stats(),
		view:    pin,
	}
	shards := e.shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		t.backends = []ShardBackend{NewLocalBackend(pin.Sub(0, n), 0)}
	} else {
		chunk := (n + shards - 1) / shards
		for off := 0; off < n; off += chunk {
			t.backends = append(t.backends,
				NewLocalBackend(pin.Sub(off, min(off+chunk, n)), len(t.backends)))
		}
	}
	t.metrics = make([]shardMetric, len(t.backends))
	return t
}

// topoNow returns the execution topology for the store's current
// generation, rebuilding it (double-checked, on the side — readers of the
// old topology are never blocked) when an append has advanced the store
// since the topology was built. Coordinators have no local store and keep
// their construction-time topology forever.
func (e *Engine) topoNow() *topo {
	t := e.topo.Load()
	if e.st == nil || t.gen == e.st.Generation() {
		return t
	}
	e.topoMu.Lock()
	defer e.topoMu.Unlock()
	t = e.topo.Load()
	if t.gen != e.st.Generation() {
		t = e.buildTopo(e.st.Pin())
		e.topo.Store(t)
	}
	return t
}

// NewFromBackends builds a coordinating engine over an explicit backend
// set — the distributed execution path. The backends must tile the
// population: sorted by offset they have to cover [0, N) contiguously,
// the same ordinal-contiguous boundaries the local engine shards on.
// Statistics are fetched from every backend and merged (exact: patient
// counts are additive over disjoint shards) so cost-based planning sees
// the same cardinalities a single global store would collect.
func NewFromBackends(backends []ShardBackend, opts Options) (*Engine, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("engine: no shard backends")
	}
	bs := append([]ShardBackend(nil), backends...)
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].Meta().Offset < bs[j].Meta().Offset })
	e := &Engine{
		policy:     opts.Policy,
		timeout:    opts.QueryTimeout,
		workers:    normalizeWorkers(opts.Workers),
		cache:      newPlanCache(opts.CacheSize),
		boundCache: newPlanCache(boundCacheSize),
		fb:         newFeedback(feedbackSize),
		plans:      newPlanMemo(planMemoSize),
		ws:         newWorkspace(),
	}
	t := &topo{backends: bs}
	for _, b := range bs {
		m := b.Meta()
		if m.Offset != t.n {
			return nil, fmt.Errorf("engine: backend %q covers ordinals [%d, %d), want start %d (shards must tile the population contiguously)",
				m.Backend, m.Offset, m.Offset+m.Patients, t.n)
		}
		t.n += m.Patients
		t.entries += m.Entries
	}
	// Merged statistics give the planner population-level cardinality
	// bounds; fetch per shard, concurrently. Construction is strict under
	// either policy: planning from a topology whose statistics never
	// loaded would degrade every query silently.
	ctx, cancel := e.opCtx(context.Background())
	defer cancel()
	parts := make([]*store.Stats, len(bs))
	errs := make([]error, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b ShardBackend) {
			defer wg.Done()
			parts[i], errs[i] = b.Stats(ctx)
		}(i, b)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: stats from backend %q: %w", bs[i].Meta().Backend, err)
		}
	}
	t.stats = store.MergeStats(parts...)
	t.metrics = make([]shardMetric, len(bs))
	e.topo.Store(t)
	return e, nil
}

func normalizeWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Store returns the global store a locally built engine answers over; nil
// for a coordinator over remote backends.
func (e *Engine) Store() *store.Store { return e.st }

// Stats returns the statistics the planner estimates from: the store's
// own for a local engine, the backends' merged cardinalities for a
// coordinator.
func (e *Engine) Stats() *store.Stats { return e.topoNow().stats }

// Patients returns the total population across all backends.
func (e *Engine) Patients() int { return e.topoNow().n }

// TotalEntries returns the total entry count across all backends.
func (e *Engine) TotalEntries() int { return e.topoNow().entries }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.topoNow().backends) }

// Policy returns the engine's failure-semantics policy.
func (e *Engine) Policy() Policy { return e.policy }

// Generation returns the store generation the engine currently answers
// for (0 for a coordinator). Appends advance it; compaction does not.
func (e *Engine) Generation() uint64 { return e.topoNow().gen }

// opCtx applies the engine's default query budget to a context that does
// not already carry a deadline. The returned cancel must always be
// called.
func (e *Engine) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, e.timeout)
		}
	}
	return context.WithCancel(ctx)
}

// BackendInfo returns every backend's shard metadata, in offset order.
func (e *Engine) BackendInfo() []ShardMeta {
	t := e.topoNow()
	out := make([]ShardMeta, len(t.backends))
	for i, b := range t.backends {
		out[i] = b.Meta()
	}
	return out
}

// Close releases the backends (network connections for remote shards;
// a no-op for local views).
func (e *Engine) Close() error {
	var errs []error
	for _, b := range e.topo.Load().backends {
		if err := b.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// CacheStats reports plan-cache hits, misses and occupancy.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// ResetCache empties the plan cache, the scan-bound cache, the recorded
// execution feedback and the plan memo (benchmarks use this to measure
// cold executions — cold statistics included).
func (e *Engine) ResetCache() {
	if e.cache != nil {
		e.cache.reset()
	}
	if e.boundCache != nil {
		e.boundCache.reset()
	}
	if e.fb != nil {
		e.fb.reset()
	}
	if e.plans != nil {
		e.plans.reset()
	}
}

// ShardStat reports one backend's cumulative evaluation load since the
// current topology was built: every plan fragment the executor fanned out
// to the backend, timed uniformly at the call site, whatever the
// transport. For a locally built engine index leaves are answered from
// the pinned postings without touching a backend and do not appear here.
// Counters restart when an append advances the generation (the topology
// — and possibly the shard layout — is rebuilt).
type ShardStat struct {
	Shard    int
	Offset   int
	Patients int
	Entries  int
	// Backend names the transport ("local", "remote(addr)",
	// "replicas(…)").
	Backend string
	Queries uint64
	Nanos   uint64
	// Failures counts calls to this backend that returned an error
	// (after any replica-level failover).
	Failures uint64
	// Skipped counts operations where PolicyDegraded absorbed this
	// backend's unavailability — answers that were served without it.
	Skipped uint64
}

// ShardStats returns per-backend evaluation counters for the 0.1 s budget
// audits (the webapp's /api/stats endpoint serves these).
func (e *Engine) ShardStats() []ShardStat {
	t := e.topoNow()
	out := make([]ShardStat, len(t.backends))
	for i, b := range t.backends {
		m := b.Meta()
		out[i] = ShardStat{
			Shard:    m.Shard,
			Offset:   m.Offset,
			Patients: m.Patients,
			Entries:  m.Entries,
			Backend:  m.Backend,
			Queries:  t.metrics[i].queries.Load(),
			Nanos:    t.metrics[i].nanos.Load(),
			Failures: t.metrics[i].failures.Load(),
			Skipped:  t.metrics[i].skips.Load(),
		}
	}
	return out
}

// ShardHealth is one backend's live health as the engine sees it: for a
// replica set, the per-member states the health checker maintains; for a
// plain backend, a single synthetic member that is healthy as long as it
// exists (plain backends have no checker — failures surface per call).
type ShardHealth struct {
	Shard    int             `json:"shard"`
	Backend  string          `json:"backend"`
	Healthy  bool            `json:"healthy"`
	Replicas []ReplicaHealth `json:"replicas,omitempty"`
}

// Health reports per-shard backend health, in offset order.
func (e *Engine) Health() []ShardHealth {
	t := e.topoNow()
	out := make([]ShardHealth, len(t.backends))
	for i, b := range t.backends {
		m := b.Meta()
		h := ShardHealth{Shard: m.Shard, Backend: m.Backend, Healthy: true}
		if rb, ok := b.(*ReplicaBackend); ok {
			h.Healthy = rb.Healthy()
			h.Replicas = rb.Health()
		}
		out[i] = h
	}
	return out
}

// optimize runs the cost-based optimizer (estimates corrected by
// execution feedback from the same generation) when statistics exist, the
// static one otherwise (empty store).
func (e *Engine) optimize(t *topo, p Plan) Plan {
	if t.stats != nil && t.stats.Patients > 0 {
		return optimizeNode(p, newFeedbackCostModel(t.stats, e.fb, t.gen))
	}
	return Optimize(p)
}

// plan returns the optimized form of p, memoized by (canonical
// expression key, feedback epoch, store generation). When execution
// feedback advances the epoch the expression is re-planned under the
// corrected estimates; the re-plan lands under the new epoch's key, never
// evicting the plan the previous epoch produced — an in-flight execution
// may still hold it, and reverting feedback restores it for free. When an
// append advances the store generation, every memoized plan keys to a
// generation that no longer exists and is simply never found again: a
// plan chosen for a previous population never answers for the new one.
// Opaque plans (per-compile keys) are planned fresh every time.
func (e *Engine) plan(t *topo, p Plan) Plan {
	if e.plans == nil || e.fb == nil || !cacheable(p) {
		return e.optimize(t, p)
	}
	key := planMemoKey(p.Key(), e.fb.epochNow(), t.gen)
	if op, ok := e.plans.get(key); ok {
		return op
	}
	op := e.optimize(t, p)
	e.plans.put(key, op)
	return op
}

// FeedbackEpoch reports the planner's statistics epoch: it advances
// whenever execution observes a cardinality the cost model did not
// already know, and re-planning any expression under a new epoch may
// produce a different (better-informed) plan.
func (e *Engine) FeedbackEpoch() uint64 {
	if e.fb == nil {
		return 0
	}
	return e.fb.epochNow()
}

// Execute compiles, optimizes and runs a query expression, returning the
// matching patients as a bitset in global ordinal space. Under
// PolicyDegraded the result may be partial; use ExecuteStatus to learn
// which shards contributed.
func (e *Engine) Execute(q query.Expr) (*store.Bitset, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute under a caller-supplied context: its deadline
// bounds the whole evaluation, threaded down to every backend call.
func (e *Engine) ExecuteContext(ctx context.Context, q query.Expr) (*store.Bitset, error) {
	b, _, err := e.ExecuteStatus(ctx, q)
	return b, err
}

// ExecuteStatus is ExecuteContext plus the completeness report: under
// PolicyDegraded the QueryStatus names the shards that did not
// contribute (under PolicyStrict it is always complete — incompleteness
// is an error).
func (e *Engine) ExecuteStatus(ctx context.Context, q query.Expr) (*store.Bitset, QueryStatus, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, QueryStatus{}, err
	}
	t := e.topoNow()
	return e.executePlanStatus(ctx, t, e.plan(t, p))
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(p Plan) (*store.Bitset, error) {
	b, _, err := e.ExecutePlanStatus(context.Background(), p)
	return b, err
}

// ExecutePlanStatus runs an already-built plan under a context, reporting
// completeness like ExecuteStatus.
func (e *Engine) ExecutePlanStatus(ctx context.Context, p Plan) (*store.Bitset, QueryStatus, error) {
	return e.executePlanStatus(ctx, e.topoNow(), p)
}

func (e *Engine) executePlanStatus(ctx context.Context, t *topo, p Plan) (*store.Bitset, QueryStatus, error) {
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	b, missing, err := e.eval(ctx, t, p)
	if err != nil {
		return nil, QueryStatus{}, err
	}
	return b, e.statusFromMissing(t, missing), nil
}

// Explain returns the statically optimized plan for an expression without
// running it. For cost-annotated plans, use Engine.Explain.
func Explain(q query.Expr) (Plan, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return Optimize(p), nil
}

// Select is Execute materialized as patient IDs in collection order.
func (e *Engine) Select(q query.Expr) ([]model.PatientID, error) {
	b, err := e.Execute(q)
	if err != nil {
		return nil, err
	}
	return e.IDsOf(b)
}

// IDsOf materializes a global-ordinal bitset as patient IDs in collection
// order. A local engine reads them off the pinned view; a coordinator
// asks each backend for its slice and concatenates in fixed shard order.
// The mapping is strict under either policy — but a bitset produced by a
// degraded query has no bits on its missing shards, so those backends
// are never asked.
func (e *Engine) IDsOf(b *store.Bitset) ([]model.PatientID, error) {
	t := e.topoNow()
	if t.view != nil {
		out := make([]model.PatientID, 0, b.Count())
		b.Range(func(i int) bool {
			out = append(out, t.view.PatientAt(i))
			return true
		})
		return out, nil
	}
	ctx, cancel := e.opCtx(context.Background())
	defer cancel()
	parts := make([][]model.PatientID, len(t.backends))
	errs := make([]error, len(t.backends))
	var wg sync.WaitGroup
	for i, bk := range t.backends {
		m := bk.Meta()
		if !b.AnyInRange(m.Offset, m.Offset+m.Patients) {
			continue
		}
		wg.Add(1)
		go func(i int, bk ShardBackend, m ShardMeta) {
			defer wg.Done()
			parts[i], errs[i] = bk.IDsOf(ctx, b.SliceRange(m.Offset, m.Offset+m.Patients))
		}(i, bk, m)
	}
	wg.Wait()
	out := make([]model.PatientID, 0, b.Count())
	for i := range parts {
		if errs[i] != nil {
			return nil, fmt.Errorf("engine: ids from backend %q: %w", t.backends[i].Meta().Backend, errs[i])
		}
		out = append(out, parts[i]...)
	}
	return out, nil
}

// eval computes the exact result of p over the topology's population,
// plus the indexes of any backends PolicyDegraded absorbed (always empty
// under PolicyStrict — their errors fail the evaluation instead). Results
// of non-trivial nodes land in the LRU keyed by canonical sub-plan under
// the topology's generation, so a refined query re-uses the unchanged
// parts of its predecessor — but only complete results: a degraded answer
// is never cached and never feeds the planner's cardinality feedback,
// both would poison later complete executions. The returned bitset is
// owned by the caller.
func (e *Engine) eval(ctx context.Context, t *topo, p Plan) (*store.Bitset, []int, error) {
	switch p.(type) {
	case All:
		return t.all(), nil, nil
	case None:
		return t.empty(), nil, nil
	}
	useCache := e.cache != nil && cacheable(p)
	key := ""
	if useCache || e.fb != nil {
		key = p.Key()
		if useCache {
			if b, ok := e.cache.get(t.gen, key); ok {
				return b, nil, nil
			}
		}
	}
	var out *store.Bitset
	var missing []int
	var err error
	if t.view == nil {
		// Coordinator: every expression is per-history, so a whole plan
		// distributes over the shards — one fan-out round, each backend
		// evaluating (and locally re-optimizing) the full plan over its
		// slice, merged in fixed shard order.
		out, missing, err = e.fanout(ctx, t, func(ctx context.Context, _ int, b ShardBackend) (*store.Bitset, error) {
			return b.EvalPlan(ctx, p, nil)
		})
	} else {
		switch n := p.(type) {
		case IndexScan:
			out, err = e.evalIndex(t, n)
		case Scan:
			out, err = e.evalScan(ctx, t, n, nil)
		case Not:
			out, _, err = e.eval(ctx, t, n.Child)
			if err == nil {
				out.Not()
			}
		case And:
			out, err = e.evalAnd(ctx, t, n.Children, nil)
		case Or:
			out, err = e.evalOr(ctx, t, n.Children, nil)
		default:
			// Plan is an open interface; fail loudly rather than returning
			// (nil, nil) for a node type this executor does not know.
			return nil, nil, fmt.Errorf("engine: unknown plan node %T", p)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if len(missing) > 0 {
		return out, missing, nil
	}
	if e.fb != nil {
		e.fb.observe(t.gen, key, out.Count())
	}
	if useCache {
		e.cache.put(t.gen, key, out)
	}
	return out, nil, nil
}

// evalMasked computes eval(p) ∩ mask, exploiting the mask to skip scan
// work. Masked results are not cached (they are mask-specific), but a
// cached unmasked result for any node — leaf or boolean subtree — is
// consulted first and intersected with the mask.
func (e *Engine) evalMasked(ctx context.Context, t *topo, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	switch p.(type) {
	case All:
		return mask.Clone(), nil
	case None:
		return t.empty(), nil
	}
	if e.cache != nil && cacheable(p) {
		if b, ok := e.cache.get(t.gen, p.Key()); ok {
			return b.And(mask), nil
		}
	}
	switch n := p.(type) {
	case Scan:
		return e.evalScan(ctx, t, n, mask)
	case Not:
		b, err := e.evalMasked(ctx, t, n.Child, mask)
		if err != nil {
			return nil, err
		}
		return mask.Clone().AndNot(b), nil
	case And:
		return e.evalAnd(ctx, t, n.Children, mask)
	case Or:
		return e.evalOr(ctx, t, n.Children, mask)
	default: // IndexScan: full evaluation is cheap and cache-friendly.
		b, _, err := e.eval(ctx, t, p)
		if err != nil {
			return nil, err
		}
		return b.And(mask), nil
	}
}

// evalAnd intersects children left to right (the optimizer ordered them
// most-selective-cheapest-first); scan-bearing children only visit
// patients still in the accumulated candidate set, and an empty
// accumulator short-circuits the remaining children entirely.
func (e *Engine) evalAnd(ctx context.Context, t *topo, children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	var acc *store.Bitset
	if mask != nil {
		acc = mask.Clone()
	} else {
		acc = t.all()
	}
	for i, c := range children {
		if acc.Count() == 0 {
			return acc, nil
		}
		if hasScan(c) {
			b, err := e.evalMasked(ctx, t, c, acc)
			if err != nil {
				return nil, err
			}
			acc = b
		} else {
			b, _, err := e.eval(ctx, t, c)
			if err != nil {
				return nil, err
			}
			acc.And(b)
		}
		// Unmasked, the accumulator after child i is the true cardinality
		// of the conjunction prefix — for i = 0, of the child itself.
		// Record every prefix (eval records the full node): these
		// observations are what lets the join-order DP see through
		// correlated predicates, and the canonical And key is
		// order-insensitive, so a prefix recorded under one order is
		// found again whatever order is tried next.
		if mask == nil && e.fb != nil && i < len(children)-1 {
			if i == 0 {
				e.fb.observe(t.gen, c.Key(), acc.Count())
			} else {
				e.fb.observe(t.gen, And{Children: children[:i+1]}.Key(), acc.Count())
			}
		}
	}
	return acc, nil
}

// evalOr unions children (the optimizer ordered them largest-first);
// scan-bearing children only visit patients not already known to match
// (and, under a mask, inside the mask), and the union short-circuits by
// absorption the moment it covers every candidate.
func (e *Engine) evalOr(ctx context.Context, t *topo, children []Plan, mask *store.Bitset) (*store.Bitset, error) {
	acc := t.empty()
	target := t.n
	if mask != nil {
		target = mask.Count()
	}
	for _, c := range children {
		if acc.Count() >= target {
			return acc, nil // absorption: every candidate already matches
		}
		if hasScan(c) {
			var rem *store.Bitset
			if mask != nil {
				rem = mask.Clone().AndNot(acc)
			} else {
				rem = acc.Clone().Not()
			}
			b, err := e.evalMasked(ctx, t, c, rem)
			if err != nil {
				return nil, err
			}
			acc.Or(b)
		} else {
			b, _, err := e.eval(ctx, t, c)
			if err != nil {
				return nil, err
			}
			if mask != nil {
				b.And(mask)
			}
			acc.Or(b)
		}
	}
	return acc, nil
}

// evalIndex answers an index leaf straight from the topology's pinned
// postings — with local backends sharing the same revision there is
// nothing to fan out. (A coordinator has no local postings; index leaves
// reach its backends inside the pushed-down plan instead.)
func (e *Engine) evalIndex(t *topo, n IndexScan) (*store.Bitset, error) {
	switch n.Op {
	case OpType:
		return t.view.WithType(n.Type), nil
	case OpSource:
		return t.view.WithSource(n.Source), nil
	default:
		if len(n.Systems) == 0 {
			return t.view.WithCodeRegex("", n.Pattern)
		}
		out := t.empty()
		for _, sys := range n.Systems {
			b, err := t.view.WithCodeRegex(sys, n.Pattern)
			if err != nil {
				return nil, err
			}
			out.Or(b)
		}
		return out, nil
	}
}

// evalScan runs the fallback evaluator over each backend's shard. The
// candidate set is the given mask intersected with the scan's
// index-derived bound (scanBound) — the driving predicate's postings —
// so whole shards whose per-shard cardinality for the driving predicate
// is zero are skipped without a backend call, and an empty candidate set
// short-circuits before any fan-out. Each backend receives its slice of
// the candidates in shard-local ordinal space.
func (e *Engine) evalScan(ctx context.Context, t *topo, n Scan, mask *store.Bitset) (*store.Bitset, error) {
	eff := mask
	if bound := e.cachedBound(t, n); bound != nil {
		if mask != nil {
			bound.And(mask)
		}
		eff = bound
	}
	if eff != nil && eff.Count() == 0 {
		return t.empty(), nil
	}
	// Local scan fan-out is strict regardless of policy: these backends
	// are in-process views, an error here is a bug, not an outage.
	out, _, err := e.strictFanout(ctx, t, func(ctx context.Context, _ int, b ShardBackend) (*store.Bitset, error) {
		m := b.Meta()
		var local *store.Bitset
		if eff != nil {
			if !eff.AnyInRange(m.Offset, m.Offset+m.Patients) {
				return store.NewBitset(m.Patients), nil
			}
			local = eff.SliceRange(m.Offset, m.Offset+m.Patients)
		}
		return b.EvalPlan(ctx, n, local)
	})
	return out, err
}

// cachedBound returns a caller-owned copy of the scan's index-derived
// candidate bound, memoized by Scan key under the topology's generation
// (opaque scans have per-compile keys, and the bound only depends on the
// typed predicate structure, so sharing by key is sound). Bound-less
// outcomes are memoized too — a zero-capacity sentinel — because deriving
// "no bound" can still walk the code vocabulary (e.g. a Code branch
// discarded by an unbounded sibling under Or).
func (e *Engine) cachedBound(t *topo, n Scan) *store.Bitset {
	key := n.Key()
	if b, ok := e.boundCache.get(t.gen, key); ok {
		if b.Len() == 0 && t.n != 0 {
			return nil // negative entry: no index bounds this scan
		}
		return b
	}
	bound := e.scanBound(t, n.Expr)
	if bound == nil {
		e.boundCache.put(t.gen, key, store.NewBitset(0))
	} else {
		e.boundCache.put(t.gen, key, bound)
	}
	return bound
}

// scanBound derives a candidate superset for a scanned expression from
// the inverted indexes: any patient the expression can match must carry
// at least one entry per index-answerable predicate it requires. Returns
// nil when no index bounds the expression. Soundness mirrors the
// evaluators exactly: Has needs ≥1 entry matching Pred; And/Sequence/
// During need every part satisfied; Or is bounded only when every branch
// is.
func (e *Engine) scanBound(t *topo, x query.Expr) *store.Bitset {
	switch q := x.(type) {
	case query.Has:
		return e.predBound(t, q.Pred)
	case query.And:
		return intersectBounds(collectBounds(e, t, []query.Expr(q)))
	case query.Or:
		bounds := collectBounds(e, t, []query.Expr(q))
		if len(bounds) != len(q) {
			return nil // an unbounded branch unbounds the union
		}
		return unionBounds(bounds)
	case query.Sequence:
		var bounds []*store.Bitset
		for _, st := range q.Steps {
			if b := e.predBound(t, st.Pred); b != nil {
				bounds = append(bounds, b)
			}
		}
		return intersectBounds(bounds)
	case query.During:
		var bounds []*store.Bitset
		if b := e.predBound(t, q.Interval); b != nil {
			bounds = append(bounds, b)
		}
		if b := e.predBound(t, q.Event); b != nil {
			bounds = append(bounds, b)
		}
		return intersectBounds(bounds)
	default: // TrueExpr, Not, demographics, opaque expressions
		return nil
	}
}

// predBound returns the patients with ≥1 entry that could match the
// event predicate, from the inverted indexes; nil when un-indexable. An
// entry matching Code necessarily carries a non-zero code matching the
// pattern (Code.Match rejects code-less entries), so the code postings
// are a sound superset.
func (e *Engine) predBound(t *topo, p query.EventPred) *store.Bitset {
	switch q := p.(type) {
	case *query.Code:
		b, err := t.view.WithCodeRegex(q.System, q.Pattern)
		if err != nil {
			return nil
		}
		return b
	case query.TypeIs:
		return t.view.WithType(model.Type(q))
	case query.SourceIs:
		return t.view.WithSource(model.Source(q))
	case query.AllOf:
		var bounds []*store.Bitset
		for _, c := range q {
			if b := e.predBound(t, c); b != nil {
				bounds = append(bounds, b)
			}
		}
		return intersectBounds(bounds)
	case query.AnyOf:
		var bounds []*store.Bitset
		for _, c := range q {
			b := e.predBound(t, c)
			if b == nil {
				return nil
			}
			bounds = append(bounds, b)
		}
		return unionBounds(bounds)
	default: // NotEv, KindIs, ValueBetween, InPeriod, TextMatch, MatchFunc…
		return nil
	}
}

func collectBounds(e *Engine, t *topo, exprs []query.Expr) []*store.Bitset {
	var bounds []*store.Bitset
	for _, c := range exprs {
		if b := e.scanBound(t, c); b != nil {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

func intersectBounds(bounds []*store.Bitset) *store.Bitset {
	if len(bounds) == 0 {
		return nil
	}
	out := bounds[0]
	for _, b := range bounds[1:] {
		out.And(b)
	}
	return out
}

func unionBounds(bounds []*store.Bitset) *store.Bitset {
	if len(bounds) == 0 {
		return nil
	}
	out := bounds[0]
	for _, b := range bounds[1:] {
		out.Or(b)
	}
	return out
}

// fanout runs fn against every backend on the worker pool, records each
// backend's wall time into the /stats counters — uniformly, whatever the
// transport — and merges the shard-local bitsets into one global bitset
// in fixed shard order, honoring the engine's policy. Under PolicyStrict
// any backend error fails the whole evaluation: a partial cohort is
// never returned. Under PolicyDegraded a backend whose error is
// transport-level unavailability is skipped — its ordinal range stays
// zero in the merged bitset and its index is reported in missing — while
// any other error (a semantic failure, a wrong-sized result) still fails
// the evaluation under either policy.
func (e *Engine) fanout(ctx context.Context, t *topo, fn func(ctx context.Context, i int, b ShardBackend) (*store.Bitset, error)) (*store.Bitset, []int, error) {
	return e.fanoutPolicy(ctx, t, e.policy, fn)
}

// strictFanout is fanout pinned to PolicyStrict, for operations that must
// not degrade whatever the engine's policy.
func (e *Engine) strictFanout(ctx context.Context, t *topo, fn func(ctx context.Context, i int, b ShardBackend) (*store.Bitset, error)) (*store.Bitset, []int, error) {
	return e.fanoutPolicy(ctx, t, PolicyStrict, fn)
}

func (e *Engine) fanoutPolicy(ctx context.Context, t *topo, policy Policy, fn func(ctx context.Context, i int, b ShardBackend) (*store.Bitset, error)) (*store.Bitset, []int, error) {
	locals := make([]*store.Bitset, len(t.backends))
	errs := make([]error, len(t.backends))
	if len(t.backends) == 1 {
		t0 := time.Now()
		locals[0], errs[0] = fn(ctx, 0, t.backends[0])
		t.record(0, t0, errs[0])
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.workers)
		for i, b := range t.backends {
			wg.Add(1)
			go func(i int, b ShardBackend) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				t0 := time.Now()
				locals[i], errs[i] = fn(ctx, i, b)
				t.record(i, t0, errs[i])
			}(i, b)
		}
		wg.Wait()
	}
	var missing []int
	for i, err := range errs {
		if err == nil {
			continue
		}
		m := t.backends[i].Meta()
		if policy == PolicyDegraded && IsUnavailable(err) && ctx.Err() == nil {
			// Absorb the outage: this shard contributes nothing, and the
			// caller is told exactly which one. (A dead overall context is
			// not an outage — the caller's budget expired, fail loudly.)
			t.metrics[i].skips.Add(1)
			missing = append(missing, i)
			locals[i] = nil
			continue
		}
		return nil, nil, fmt.Errorf("engine: shard %d (%s): %w", m.Shard, m.Backend, err)
	}
	out := t.empty()
	for i, local := range locals {
		if local == nil {
			continue // degraded-away shard: its range stays zero
		}
		m := t.backends[i].Meta()
		if local.Len() != m.Patients {
			return nil, nil, fmt.Errorf("engine: shard %d (%s): result covers %d patients, shard has %d",
				m.Shard, m.Backend, local.Len(), m.Patients)
		}
		out.OrAt(local, m.Offset)
	}
	return out, missing, nil
}

func (t *topo) record(i int, t0 time.Time, err error) {
	t.metrics[i].queries.Add(1)
	t.metrics[i].nanos.Add(uint64(time.Since(t0)))
	if err != nil {
		t.metrics[i].failures.Add(1)
	}
}
