package engine

// The distributed analytics tier: a generic per-history map-reduce over
// the backend set. An analyzer kind names a registered map step (rule
// support counting, episode abstraction, temporal scenario matching);
// AnalyzeArgs carries the kind, its gob-encoded parameters and a
// shard-local cohort mask, and every backend runs the map step over only
// the masked-in histories, returning a mergeable integer partial. The
// coordinator reduces the partials exactly — the same integral-tally
// discipline stats.IndicatorCounts and stats.CohortProfile follow — so a
// distributed mine/abstract/match is bit-identical to a sequential pass
// at any shard count over any transport mix, and no history ever leaves
// its shard for the map step. Genuinely cross-history analytics (MSA,
// clustering) stay coordinator-side over candidate sets paged in through
// FetchHistories.
//
// Kinds are strings rather than iota for the same reason wire.go's node
// tags are: a reordered constant block can never silently re-interpret a
// peer's payload. Parameters and partials cross the wire gob-encoded per
// kind; decode validates before any map or merge work, so a hostile
// payload (unknown kind, truncated params, out-of-range relation) is a
// loud error, never a panic and never a silently wrong tally.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"pastas/internal/abstraction"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/store"
	"pastas/internal/temporal"
)

// Registered analyzer kinds.
const (
	// AnalyzeMine counts co-occurrence / sequential rule support over
	// per-history diagnosis code sequences (partial: *mining.Counts).
	AnalyzeMine = "mine"
	// AnalyzeEpisodes derives care episodes per history and tallies them
	// (partial: *abstraction.EpisodeTally).
	AnalyzeEpisodes = "episodes"
	// AnalyzeScenario matches an Allen-relation scenario against each
	// history's episodes (partial: *temporal.ScenarioTally).
	AnalyzeScenario = "scenario"
)

// Partial is one shard's mergeable map-step result. The concrete type is
// per analyzer kind (see the kind constants); HistoryCount is the sanity
// bound a transport checks a reply against — a shard can never claim to
// have tallied more histories than it holds.
type Partial interface {
	HistoryCount() int
}

// AnalyzeArgs is one backend's share of a map step: the analyzer kind,
// its encoded parameters, and the shard-local candidate mask (nil means
// the whole shard).
type AnalyzeArgs struct {
	Kind   string
	Params []byte
	Mask   *store.Bitset
}

// AnalyzeRequest is a coordinator-level analysis: the kind plus encoded
// parameters, built by MineRequest / EpisodesRequest / ScenarioRequest.
type AnalyzeRequest struct {
	Kind   string
	Params []byte
}

// MineParams parameterizes the AnalyzeMine map step. Thresholds
// (support, count floors) are not here on purpose: they apply once, at
// finalization on the coordinator (mining.Counts.Rules), so they can
// never change what the shards count.
type MineParams struct {
	// Sequential selects ordered A-then-B counting; false counts
	// unordered co-occurrence.
	Sequential bool
	// MaxGap bounds the position distance for sequential pairs; 0 means
	// unbounded.
	MaxGap int
	// System filters diagnosis codes to one code system ("" = all).
	System string
	// Chapter abstracts codes to chapter level before counting (T89 and
	// T90 both count as T).
	Chapter bool
}

func (p MineParams) validate() error {
	if p.MaxGap < 0 {
		return fmt.Errorf("engine: mine params: negative MaxGap %d", p.MaxGap)
	}
	return nil
}

// EpisodeParams parameterizes the AnalyzeEpisodes map step.
type EpisodeParams struct {
	// Gap is the quiet time separating episodes; must be positive.
	Gap model.Time
}

func (p EpisodeParams) validate() error {
	if p.Gap <= 0 {
		return fmt.Errorf("engine: episode params: gap must be positive, got %d", p.Gap)
	}
	return nil
}

// ScenarioParams parameterizes the AnalyzeScenario map step.
type ScenarioParams struct {
	// Gap is the episode-derivation gap; must be positive.
	Gap model.Time
	// Scenario is the temporal pattern to match per history.
	Scenario temporal.Scenario
}

func (p ScenarioParams) validate() error {
	if p.Gap <= 0 {
		return fmt.Errorf("engine: scenario params: gap must be positive, got %d", p.Gap)
	}
	return p.Scenario.Validate()
}

// MineRequest validates and encodes mine parameters into a request.
func MineRequest(p MineParams) (AnalyzeRequest, error) {
	if err := p.validate(); err != nil {
		return AnalyzeRequest{}, err
	}
	data, err := gobEncode(&p)
	if err != nil {
		return AnalyzeRequest{}, err
	}
	return AnalyzeRequest{Kind: AnalyzeMine, Params: data}, nil
}

// EpisodesRequest validates and encodes episode parameters into a request.
func EpisodesRequest(p EpisodeParams) (AnalyzeRequest, error) {
	if err := p.validate(); err != nil {
		return AnalyzeRequest{}, err
	}
	data, err := gobEncode(&p)
	if err != nil {
		return AnalyzeRequest{}, err
	}
	return AnalyzeRequest{Kind: AnalyzeEpisodes, Params: data}, nil
}

// ScenarioRequest validates and encodes scenario parameters into a request.
func ScenarioRequest(p ScenarioParams) (AnalyzeRequest, error) {
	if err := p.validate(); err != nil {
		return AnalyzeRequest{}, err
	}
	data, err := gobEncode(&p)
	if err != nil {
		return AnalyzeRequest{}, err
	}
	return AnalyzeRequest{Kind: AnalyzeScenario, Params: data}, nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("engine: encode analyze payload: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	if len(data) == 0 {
		return fmt.Errorf("engine: empty analyze payload")
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("engine: decode analyze payload: %w", err)
	}
	return nil
}

// analyzer is one registered kind: parameter decoding (with validation),
// the per-history map step, the exact reduce, and the partial's wire
// codec. Everything a transport needs, so the local backend, the shard
// server and the coordinator can never disagree on semantics.
type analyzer struct {
	decodeParams  func([]byte) (any, error)
	newPartial    func(params any) Partial
	addHistory    func(p Partial, params any, h *model.History)
	merge         func(dst, src Partial) error
	encodePartial func(Partial) ([]byte, error)
	decodePartial func([]byte) (Partial, error)
}

// analyzers is the kind registry. All three built-in map steps read
// histories through the non-mutating accessors (SortedEntries and
// friends): a shard server runs them concurrently over shared histories,
// so a map step that re-sorted entries in place would race.
var analyzers = map[string]analyzer{
	AnalyzeMine: {
		decodeParams: func(data []byte) (any, error) {
			var p MineParams
			if err := gobDecode(data, &p); err != nil {
				return nil, err
			}
			if err := p.validate(); err != nil {
				return nil, err
			}
			return &p, nil
		},
		newPartial: func(params any) Partial {
			p := params.(*MineParams)
			return mining.NewCounts(p.Sequential, p.MaxGap)
		},
		addHistory: func(part Partial, params any, h *model.History) {
			p := params.(*MineParams)
			seq := mineSequence(h, p)
			if len(seq) > 0 {
				part.(*mining.Counts).AddSequence(seq)
			}
		},
		merge: func(dst, src Partial) error {
			return dst.(*mining.Counts).Merge(src.(*mining.Counts))
		},
		encodePartial: func(p Partial) ([]byte, error) { return gobEncode(p.(*mining.Counts)) },
		decodePartial: func(data []byte) (Partial, error) {
			c := new(mining.Counts)
			if err := gobDecode(data, c); err != nil {
				return nil, err
			}
			if err := validateCounts(c); err != nil {
				return nil, err
			}
			return c, nil
		},
	},
	AnalyzeEpisodes: {
		decodeParams: func(data []byte) (any, error) {
			var p EpisodeParams
			if err := gobDecode(data, &p); err != nil {
				return nil, err
			}
			if err := p.validate(); err != nil {
				return nil, err
			}
			return &p, nil
		},
		newPartial: func(any) Partial { return abstraction.NewEpisodeTally() },
		addHistory: func(part Partial, params any, h *model.History) {
			part.(*abstraction.EpisodeTally).AddHistory(h, params.(*EpisodeParams).Gap)
		},
		merge: func(dst, src Partial) error {
			dst.(*abstraction.EpisodeTally).Merge(src.(*abstraction.EpisodeTally))
			return nil
		},
		encodePartial: func(p Partial) ([]byte, error) { return gobEncode(p.(*abstraction.EpisodeTally)) },
		decodePartial: func(data []byte) (Partial, error) {
			t := new(abstraction.EpisodeTally)
			if err := gobDecode(data, t); err != nil {
				return nil, err
			}
			if err := validateEpisodeTally(t); err != nil {
				return nil, err
			}
			return t, nil
		},
	},
	AnalyzeScenario: {
		decodeParams: func(data []byte) (any, error) {
			var p ScenarioParams
			if err := gobDecode(data, &p); err != nil {
				return nil, err
			}
			if err := p.validate(); err != nil {
				return nil, err
			}
			return &p, nil
		},
		newPartial: func(any) Partial { return new(temporal.ScenarioTally) },
		addHistory: func(part Partial, params any, h *model.History) {
			p := params.(*ScenarioParams)
			eps := abstraction.EpisodesStable(h, p.Gap)
			part.(*temporal.ScenarioTally).Add(p.Scenario.MatchEpisodes(eps))
		},
		merge: func(dst, src Partial) error {
			dst.(*temporal.ScenarioTally).Merge(src.(*temporal.ScenarioTally))
			return nil
		},
		encodePartial: func(p Partial) ([]byte, error) { return gobEncode(p.(*temporal.ScenarioTally)) },
		decodePartial: func(data []byte) (Partial, error) {
			t := new(temporal.ScenarioTally)
			if err := gobDecode(data, t); err != nil {
				return nil, err
			}
			if t.Histories < 0 || t.Bound < 0 || t.Matched < 0 ||
				t.Bound > t.Histories || t.Matched > t.Bound {
				return nil, fmt.Errorf("engine: scenario tally is inconsistent (%d/%d/%d)",
					t.Histories, t.Bound, t.Matched)
			}
			return t, nil
		},
	},
}

// mineSequence extracts one history's code sequence for the mine map
// step: chronological diagnosis codes, optionally filtered to one system
// and abstracted to chapter level.
func mineSequence(h *model.History, p *MineParams) []string {
	codes := h.CodeSequenceStable(model.TypeDiagnosis)
	out := make([]string, 0, len(codes))
	for _, c := range codes {
		if p.System != "" && c.System != p.System {
			continue
		}
		if p.Chapter {
			if ch := abstraction.ChapterOf(c); ch != "" {
				out = append(out, ch)
			}
			continue
		}
		out = append(out, c.Value)
	}
	return out
}

// validateCounts holds a hostile or corrupt mine partial to an error: the
// integer tallies must be internally consistent before they are merged.
func validateCounts(c *mining.Counts) error {
	if c.N < 0 || c.MaxGap < 0 {
		return fmt.Errorf("engine: mine tally is inconsistent (n=%d gap=%d)", c.N, c.MaxGap)
	}
	for code, n := range c.Single {
		if n < 1 || n > c.N {
			return fmt.Errorf("engine: mine tally: code %q counted %d times over %d histories", code, n, c.N)
		}
	}
	for p, n := range c.Pair {
		if n < 1 || n > c.N {
			return fmt.Errorf("engine: mine tally: pair %v counted %d times over %d histories", p, n, c.N)
		}
	}
	return nil
}

func validateEpisodeTally(t *abstraction.EpisodeTally) error {
	if t.Histories < 0 || t.WithEpisodes < 0 || t.Episodes < 0 || t.Entries < 0 || t.SpanTotal < 0 ||
		t.WithEpisodes > t.Histories || t.Episodes < t.WithEpisodes {
		return fmt.Errorf("engine: episode tally is inconsistent (%d/%d/%d)", t.Histories, t.WithEpisodes, t.Episodes)
	}
	for k, n := range t.ByDominant {
		if n < 1 || n > t.Episodes {
			return fmt.Errorf("engine: episode tally: dominant %q counted %d times over %d episodes", k, n, t.Episodes)
		}
	}
	return nil
}

// tallyAnalyze is the one map loop both transports run — the local view
// directly, the shard server over its own collection — so the mask
// contract, the parameter validation and the per-history map step can
// never diverge between them. This mirrors tallyIndicators/tallyProfile.
func tallyAnalyze(history func(int) *model.History, patients int, args AnalyzeArgs) (Partial, error) {
	spec, ok := analyzers[args.Kind]
	if !ok {
		return nil, fmt.Errorf("engine: unknown analyzer kind %q", args.Kind)
	}
	params, err := spec.decodeParams(args.Params)
	if err != nil {
		return nil, fmt.Errorf("engine: analyzer %q: %w", args.Kind, err)
	}
	if args.Mask != nil && args.Mask.Len() != patients {
		return nil, fmt.Errorf("engine: analyze mask covers %d patients, shard has %d", args.Mask.Len(), patients)
	}
	part := spec.newPartial(params)
	if args.Mask != nil {
		args.Mask.Range(func(i int) bool {
			spec.addHistory(part, params, history(i))
			return true
		})
	} else {
		for i := 0; i < patients; i++ {
			spec.addHistory(part, params, history(i))
		}
	}
	return part, nil
}

// encodeAnalyzePartial serializes a partial for the wire, keyed by kind.
func encodeAnalyzePartial(kind string, p Partial) ([]byte, error) {
	spec, ok := analyzers[kind]
	if !ok {
		return nil, fmt.Errorf("engine: unknown analyzer kind %q", kind)
	}
	return spec.encodePartial(p)
}

// decodeAnalyzePartial reconstructs and validates a wire partial.
func decodeAnalyzePartial(kind string, data []byte) (Partial, error) {
	spec, ok := analyzers[kind]
	if !ok {
		return nil, fmt.Errorf("engine: unknown analyzer kind %q", kind)
	}
	return spec.decodePartial(data)
}

// Analyze runs a registered map step over the cohort a global-ordinal
// bitset selects and reduces the per-shard partials exactly. Under
// PolicyDegraded the reduce may omit unreachable shards; use
// AnalyzeStatus to learn which.
func (e *Engine) Analyze(b *store.Bitset, req AnalyzeRequest) (Partial, error) {
	part, _, err := e.AnalyzeStatus(context.Background(), b, req)
	return part, err
}

// AnalyzeStatus is Analyze under a caller-supplied context, plus the
// completeness report. The fan-out is the same shape Profile and
// Indicators use: shards without a cohort member are never contacted,
// each contacted shard maps over only its slice of the mask, and the
// partials merge in fixed shard order — integer tallies, so grouping
// cannot change the result and the reduce is exact.
func (e *Engine) AnalyzeStatus(ctx context.Context, b *store.Bitset, req AnalyzeRequest) (Partial, QueryStatus, error) {
	spec, ok := analyzers[req.Kind]
	if !ok {
		return nil, QueryStatus{}, fmt.Errorf("engine: unknown analyzer kind %q", req.Kind)
	}
	params, err := spec.decodeParams(req.Params)
	if err != nil {
		return nil, QueryStatus{}, fmt.Errorf("engine: analyzer %q: %w", req.Kind, err)
	}
	t := e.topoNow()
	if b.Len() != t.n {
		return nil, QueryStatus{}, fmt.Errorf("engine: bitset covers %d patients, population has %d (re-run the query if an append landed since)", b.Len(), t.n)
	}
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	parts := make([]Partial, len(t.backends))
	errs := make([]error, len(t.backends))
	asked := make([]bool, len(t.backends))
	var wg sync.WaitGroup
	for i, bk := range t.backends {
		m := bk.Meta()
		if !b.AnyInRange(m.Offset, m.Offset+m.Patients) {
			continue
		}
		asked[i] = true
		mask := b.SliceRange(m.Offset, m.Offset+m.Patients)
		wg.Add(1)
		go func(i int, bk ShardBackend, mask *store.Bitset) {
			defer wg.Done()
			t0 := time.Now()
			parts[i], errs[i] = bk.Analyze(ctx, AnalyzeArgs{Kind: req.Kind, Params: req.Params, Mask: mask})
			t.record(i, t0, errs[i])
		}(i, bk, mask)
	}
	wg.Wait()
	out := spec.newPartial(params)
	var missing []int
	for i := range parts {
		if errs[i] != nil {
			if e.policy == PolicyDegraded && IsUnavailable(errs[i]) && ctx.Err() == nil {
				t.metrics[i].skips.Add(1)
				missing = append(missing, i)
				continue
			}
			return nil, QueryStatus{}, &ShardError{Shard: t.backends[i].Meta().Shard,
				Err: fmt.Errorf("engine: analyze %q on shard %d (%s): %w",
					req.Kind, t.backends[i].Meta().Shard, t.backends[i].Meta().Backend, errs[i])}
		}
		if asked[i] {
			if err := spec.merge(out, parts[i]); err != nil {
				return nil, QueryStatus{}, &ShardError{Shard: t.backends[i].Meta().Shard,
					Err: fmt.Errorf("engine: analyze %q on shard %d (%s): %w",
						req.Kind, t.backends[i].Meta().Shard, t.backends[i].Meta().Backend, err)}
			}
		}
	}
	return out, e.statusFromMissing(t, missing), nil
}
