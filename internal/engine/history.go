package engine

// History-level operations over the backend set: materializing the
// histories a cohort bitset selects, resolving one patient wherever its
// shard lives, and aggregating utilization indicators server-side. These
// are the operations that make a coordinator over remote shards a
// complete workbench — timelines, details-on-demand and indicator panels
// work without a local store — while keeping the wire cost proportional
// to what the analyst actually looks at: fetches ship only the selected
// histories, indicator aggregation ships a fixed-size tally per shard.
//
// Failure semantics: Histories and HistoryByID are strict under either
// policy — a timeline with silently absent patients or a "not found"
// manufactured by a dead shard would be actively misleading. Indicators
// may degrade (IndicatorsStatus): an aggregate over the reachable shards
// is still a meaningful aggregate as long as the caller is told which
// shards are absent from it.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pastas/internal/model"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// ErrNoPatient is returned (wrapped) by HistoryByID when no shard holds
// the requested patient.
var ErrNoPatient = errors.New("no such patient")

// Histories materializes the histories selected by a global-ordinal
// bitset, in ordinal (collection) order. A store-backed engine reads them
// off the collection; a coordinator fetches each backend's slice of the
// selection concurrently — shards without a selected patient are never
// contacted — and concatenates in fixed shard order. Any backend failure
// fails the whole call under either policy: a partial history set is
// never returned.
func (e *Engine) Histories(b *store.Bitset) ([]*model.History, error) {
	return e.HistoriesContext(context.Background(), b)
}

// HistoriesContext is Histories under a caller-supplied context.
func (e *Engine) HistoriesContext(ctx context.Context, b *store.Bitset) ([]*model.History, error) {
	t := e.topoNow()
	if b.Len() != t.n {
		return nil, fmt.Errorf("engine: bitset covers %d patients, population has %d (re-run the query if an append landed since)", b.Len(), t.n)
	}
	if t.view != nil {
		out := make([]*model.History, 0, b.Count())
		b.Range(func(i int) bool {
			out = append(out, t.view.HistoryAt(i))
			return true
		})
		return out, nil
	}
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	parts := make([][]*model.History, len(t.backends))
	errs := make([]error, len(t.backends))
	var wg sync.WaitGroup
	for i, bk := range t.backends {
		m := bk.Meta()
		if !b.AnyInRange(m.Offset, m.Offset+m.Patients) {
			continue
		}
		ordinals := b.SliceRange(m.Offset, m.Offset+m.Patients).Ones()
		wg.Add(1)
		go func(i int, bk ShardBackend, ordinals []int) {
			defer wg.Done()
			t0 := time.Now()
			parts[i], errs[i] = bk.FetchHistories(ctx, ordinals)
			t.record(i, t0, errs[i])
		}(i, bk, ordinals)
	}
	wg.Wait()
	out := make([]*model.History, 0, b.Count())
	for i := range parts {
		if errs[i] != nil {
			return nil, fmt.Errorf("engine: histories from shard %d (%s): %w",
				t.backends[i].Meta().Shard, t.backends[i].Meta().Backend, errs[i])
		}
		out = append(out, parts[i]...)
	}
	return out, nil
}

// HistoryByID resolves one patient's history wherever its shard lives. A
// store-backed engine answers from the collection; a coordinator probes
// every backend for the patient's shard-local ordinal concurrently and
// fetches from the one that holds it. A failed probe is a loud error
// under either policy — "not found" is only reported when every shard
// answered and none holds the patient, so a down backend can never
// masquerade as a missing patient. Absence is reported as an error
// wrapping ErrNoPatient.
func (e *Engine) HistoryByID(id model.PatientID) (*model.History, error) {
	return e.HistoryByIDContext(context.Background(), id)
}

// HistoryByIDContext is HistoryByID under a caller-supplied context.
func (e *Engine) HistoryByIDContext(ctx context.Context, id model.PatientID) (*model.History, error) {
	t := e.topoNow()
	if t.view != nil {
		if o, ok := t.view.Ordinal(id); ok {
			return t.view.HistoryAt(o), nil
		}
		return nil, fmt.Errorf("engine: %s: %w", id, ErrNoPatient)
	}
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	type hit struct {
		backend int
		ordinal int
	}
	hits := make([]*hit, len(t.backends))
	errs := make([]error, len(t.backends))
	var wg sync.WaitGroup
	for i, bk := range t.backends {
		wg.Add(1)
		go func(i int, bk ShardBackend) {
			defer wg.Done()
			t0 := time.Now()
			o, ok, err := bk.LocateID(ctx, id)
			t.record(i, t0, err)
			if err != nil {
				errs[i] = err
				return
			}
			if ok {
				hits[i] = &hit{backend: i, ordinal: o}
			}
		}(i, bk)
	}
	wg.Wait()
	var found *hit
	for i := range t.backends {
		if errs[i] != nil {
			return nil, fmt.Errorf("engine: locate %s on shard %d (%s): %w",
				id, t.backends[i].Meta().Shard, t.backends[i].Meta().Backend, errs[i])
		}
		if hits[i] != nil {
			if found != nil {
				return nil, fmt.Errorf("engine: patient %s claimed by shards %d and %d",
					id, t.backends[found.backend].Meta().Shard, t.backends[i].Meta().Shard)
			}
			found = hits[i]
		}
	}
	if found == nil {
		return nil, fmt.Errorf("engine: %s: %w", id, ErrNoPatient)
	}
	bk := t.backends[found.backend]
	t0 := time.Now()
	hs, err := bk.FetchHistories(ctx, []int{found.ordinal})
	t.record(found.backend, t0, err)
	if err != nil {
		return nil, fmt.Errorf("engine: fetch %s from shard %d (%s): %w",
			id, bk.Meta().Shard, bk.Meta().Backend, err)
	}
	if len(hs) != 1 || hs[0].Patient.ID != id {
		return nil, fmt.Errorf("engine: shard %d answered the fetch for %s with the wrong history",
			bk.Meta().Shard, id)
	}
	return hs[0], nil
}

// Indicators aggregates the utilization indicators for the cohort a
// global-ordinal bitset selects, over the window. Every backend tallies
// its slice server-side (a fixed-size integral partial, whatever the
// cohort size) and the partials merge exactly — integer sums are
// associative — so the result is bit-identical to a sequential pass over
// the same cohort on a single store, at shard counts 1 through N and over
// any transport mix. Shards without a cohort member are never contacted.
// Under PolicyDegraded the aggregate may omit unreachable shards; use
// IndicatorsStatus to learn which.
func (e *Engine) Indicators(b *store.Bitset, window model.Period) (stats.Indicators, error) {
	ind, _, err := e.IndicatorsStatus(context.Background(), b, window)
	return ind, err
}

// IndicatorsStatus is Indicators under a caller-supplied context, plus
// the completeness report: under PolicyDegraded the QueryStatus names the
// shards whose tallies are absent from the aggregate.
func (e *Engine) IndicatorsStatus(ctx context.Context, b *store.Bitset, window model.Period) (stats.Indicators, QueryStatus, error) {
	t := e.topoNow()
	if b.Len() != t.n {
		return stats.Indicators{}, QueryStatus{}, fmt.Errorf("engine: bitset covers %d patients, population has %d (re-run the query if an append landed since)", b.Len(), t.n)
	}
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	parts := make([]stats.IndicatorCounts, len(t.backends))
	errs := make([]error, len(t.backends))
	asked := make([]bool, len(t.backends))
	var wg sync.WaitGroup
	for i, bk := range t.backends {
		m := bk.Meta()
		if !b.AnyInRange(m.Offset, m.Offset+m.Patients) {
			continue
		}
		asked[i] = true
		mask := b.SliceRange(m.Offset, m.Offset+m.Patients)
		wg.Add(1)
		go func(i int, bk ShardBackend, mask *store.Bitset) {
			defer wg.Done()
			t0 := time.Now()
			parts[i], errs[i] = bk.Indicators(ctx, mask, window)
			t.record(i, t0, errs[i])
		}(i, bk, mask)
	}
	wg.Wait()
	var counts stats.IndicatorCounts
	var missing []int
	for i := range parts {
		if errs[i] != nil {
			if e.policy == PolicyDegraded && IsUnavailable(errs[i]) && ctx.Err() == nil {
				t.metrics[i].skips.Add(1)
				missing = append(missing, i)
				continue
			}
			return stats.Indicators{}, QueryStatus{}, fmt.Errorf("engine: indicators from shard %d (%s): %w",
				t.backends[i].Meta().Shard, t.backends[i].Meta().Backend, errs[i])
		}
		if asked[i] {
			counts.Merge(parts[i])
		}
	}
	return counts.Finalize(window), e.statusFromMissing(t, missing), nil
}
