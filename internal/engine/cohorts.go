package engine

// The cohort workspace: named query results materialized as bitsets the
// refinement planner can seed later executions from — the engine half of
// the paper's iterate-on-a-cohort workflow. A materialized cohort is
// keyed by (name, canonical expression key, store generation); like the
// plan cache and the plan memo, the workspace is epoched by the
// generation, so an append invalidates every saved cohort at once and a
// stale cohort can never seed a plan over a population it no longer
// describes.
//
// Refine is where the O(delta) win lives: when a new expression is
// parent ∧ delta (or parent ∨ delta, parent ∧ ¬delta — Not is just
// another conjunct), only the delta is executed, masked by the cached
// parent bitset. On a local engine that rides the existing evalMasked
// path; on a coordinator the parent mask itself is pushed down —
// container-encoded and crc-checked — so each remote shard evaluates the
// delta over its candidates and ships back one shard-local bitset,
// instead of the coordinator pulling whole leaves over the wire.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pastas/internal/query"
	"pastas/internal/store"
)

// Refinement modes, reported in Refinement.Mode and explain output.
const (
	// RefineExact: the expression matches a saved cohort exactly (or a
	// saved combination covers every conjunct/disjunct); the answer is the
	// cached bitset, no evaluation at all.
	RefineExact = "exact"
	// RefineNarrow: the expression is seed ∧ delta; only the delta runs,
	// masked by the seed.
	RefineNarrow = "narrow"
	// RefineWiden: the expression is seed ∨ delta; the delta runs only
	// over patients outside the seed.
	RefineWiden = "widen"
	// RefineScratch: no saved cohort seeds the expression; full execution.
	RefineScratch = "scratch"
)

// workspaceSize caps the number of materialized cohorts held in memory;
// the oldest saved cohort is evicted first (loadgen-style workloads mint
// unique names forever, and an unbounded map of 1M-patient bitsets is a
// leak, not a cache).
const workspaceSize = 1024

// cohortEntry is one materialized cohort, immutable once stored: bits is
// never written again, readers clone before any set algebra.
type cohortEntry struct {
	name string
	expr query.Expr
	// key is the optimized plan's canonical key; "" for entries whose key
	// cannot identify them across compilations (never seeds a refinement).
	key string
	// op/subKeys describe the plan's top-level shape for subset matching:
	// op is "and" or "or" with subKeys the sorted child keys, or "leaf".
	op      string
	subKeys []string
	count   int
	bits    *store.Bitset
}

// workspace holds the materialized cohorts of one engine, epoched by
// store generation exactly like planCache: entries from any other
// generation are invisible, and the first access at a newer generation
// drops the old entries wholesale.
type workspace struct {
	mu    sync.Mutex
	gen   uint64
	m     map[string]*cohortEntry
	order []string // insertion order, for bounded eviction
}

func newWorkspace() *workspace {
	return &workspace{m: make(map[string]*cohortEntry)}
}

// sync advances the epoch, dropping every entry from an older
// generation; the caller holds ws.mu. Returns false when the caller's
// generation is itself stale.
func (ws *workspace) sync(gen uint64) bool {
	if gen != ws.gen {
		if gen < ws.gen {
			return false
		}
		ws.m = make(map[string]*cohortEntry)
		ws.order = ws.order[:0]
		ws.gen = gen
	}
	return true
}

func (ws *workspace) put(gen uint64, en *cohortEntry) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if !ws.sync(gen) {
		return // a save that raced an append: the cohort is already stale
	}
	if _, ok := ws.m[en.name]; !ok {
		ws.order = append(ws.order, en.name)
	}
	ws.m[en.name] = en
	for len(ws.m) > workspaceSize {
		oldest := ws.order[0]
		ws.order = ws.order[1:]
		delete(ws.m, oldest)
	}
}

func (ws *workspace) get(gen uint64, name string) *cohortEntry {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if !ws.sync(gen) {
		return nil
	}
	return ws.m[name]
}

func (ws *workspace) drop(name string) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if _, ok := ws.m[name]; !ok {
		return false
	}
	delete(ws.m, name)
	for i, n := range ws.order {
		if n == name {
			ws.order = append(ws.order[:i], ws.order[i+1:]...)
			break
		}
	}
	return true
}

// all returns the live entries at gen, sorted by name (deterministic
// seed selection).
func (ws *workspace) all(gen uint64) []*cohortEntry {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if !ws.sync(gen) {
		return nil
	}
	out := make([]*cohortEntry, 0, len(ws.m))
	for _, en := range ws.m {
		out = append(out, en)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// CohortInfo describes one materialized cohort.
type CohortInfo struct {
	Name string `json:"name"`
	// Expr is the saved expression's rendering.
	Expr string `json:"expr"`
	// Generation is the store generation the cohort was materialized at;
	// an append past it invalidates the cohort.
	Generation uint64 `json:"generation"`
	Count      int    `json:"count"`
}

// Refinement reports how a Refine call was planned — the provenance that
// makes delta-execution observable.
type Refinement struct {
	// Mode is one of RefineExact, RefineNarrow, RefineWiden,
	// RefineScratch.
	Mode string `json:"mode"`
	// Seed names the materialized cohort that seeded the plan (empty for
	// scratch).
	Seed string `json:"seed,omitempty"`
	// SeedCount is the seed cohort's cardinality — the candidate set the
	// delta was bounded to.
	SeedCount int `json:"seed_count,omitempty"`
	// Delta is the canonical key of the plan fragment that actually ran.
	Delta string `json:"delta,omitempty"`
	// Pushed reports whether the seed mask was shipped to remote shards
	// (true only on a coordinator; a local engine masks in-process).
	Pushed bool `json:"pushed"`
}

func (r Refinement) String() string {
	switch r.Mode {
	case RefineExact:
		return fmt.Sprintf("exact: answered from cohort %q (%d patients), nothing executed", r.Seed, r.SeedCount)
	case RefineNarrow, RefineWiden:
		where := "masked locally"
		if r.Pushed {
			where = "mask pushed down to remote shards"
		}
		return fmt.Sprintf("%s: cohort %q (%d patients) seeded the scan, delta %s, %s", r.Mode, r.Seed, r.SeedCount, r.Delta, where)
	default:
		return "scratch: no materialized cohort seeds this expression"
	}
}

// ErrInvalidName is returned (wrapped) when a cohort name violates the
// naming contract — callers use it to classify the failure as the
// caller's fault (an HTTP 400, not a 500).
var ErrInvalidName = fmt.Errorf("invalid cohort name")

// validateCohortName enforces the naming contract shared by every
// surface (engine, snapshot segment, RPC, HTTP): non-empty, at most 200
// bytes, no control characters.
func validateCohortName(name string) error {
	if name == "" {
		return fmt.Errorf("engine: %w: must not be empty", ErrInvalidName)
	}
	if len(name) > 200 {
		return fmt.Errorf("engine: %w: longer than 200 bytes", ErrInvalidName)
	}
	if strings.ContainsFunc(name, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
		return fmt.Errorf("engine: %w: contains control characters", ErrInvalidName)
	}
	return nil
}

// Materialize executes an expression from scratch and saves the result
// as a named cohort at the current store generation. Materialization is
// complete-only whatever the engine's policy: a degraded answer is an
// error, never a saved cohort (it would silently poison every later
// refinement). The expression must be canonical (serializable): opaque
// predicates cannot be persisted or re-validated, so they cannot name a
// cohort.
func (e *Engine) Materialize(ctx context.Context, name string, q query.Expr) (CohortInfo, error) {
	if err := validateCohortName(name); err != nil {
		return CohortInfo{}, err
	}
	if !canonicalExpr(q) {
		return CohortInfo{}, fmt.Errorf("engine: materialize %q: expression contains opaque predicates and cannot be saved", name)
	}
	p, err := Compile(q)
	if err != nil {
		return CohortInfo{}, err
	}
	t := e.topoNow()
	p = e.plan(t, p)
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	bits, missing, err := e.eval(ctx, t, p)
	if err != nil {
		return CohortInfo{}, fmt.Errorf("engine: materialize %q: %w", name, err)
	}
	if len(missing) > 0 {
		return CohortInfo{}, fmt.Errorf("engine: materialize %q: %w: %s (a degraded answer is never materialized)",
			name, ErrUnavailable, e.statusFromMissing(t, missing))
	}
	return e.saveCohort(t, name, q, p, bits), nil
}

// Refine executes an expression seeded by the materialized cohorts and
// saves the result under the given name. When the expression is
// recognized as seed ∧ delta (or seed ∨ delta), only the delta runs —
// masked by the seed bitset locally, or with the mask pushed down to
// remote shards on a coordinator. An unrecognized expression falls back
// to from-scratch materialization; either way the answer is exactly what
// Execute would return, just cheaper.
func (e *Engine) Refine(ctx context.Context, name string, q query.Expr) (CohortInfo, Refinement, error) {
	if err := validateCohortName(name); err != nil {
		return CohortInfo{}, Refinement{}, err
	}
	if !canonicalExpr(q) {
		return CohortInfo{}, Refinement{}, fmt.Errorf("engine: refine %q: expression contains opaque predicates and cannot be saved", name)
	}
	p, err := Compile(q)
	if err != nil {
		return CohortInfo{}, Refinement{}, err
	}
	t := e.topoNow()
	p = e.plan(t, p)
	ctx, cancel := e.opCtx(ctx)
	defer cancel()

	seed, remaining, mode := e.refineSeed(t, p)
	if seed == nil {
		bits, missing, err := e.eval(ctx, t, p)
		if err != nil {
			return CohortInfo{}, Refinement{}, fmt.Errorf("engine: refine %q: %w", name, err)
		}
		if len(missing) > 0 {
			return CohortInfo{}, Refinement{}, fmt.Errorf("engine: refine %q: %w: %s (a degraded answer is never materialized)",
				name, ErrUnavailable, e.statusFromMissing(t, missing))
		}
		return e.saveCohort(t, name, q, p, bits), Refinement{Mode: RefineScratch}, nil
	}

	ref := Refinement{Mode: mode, Seed: seed.name, SeedCount: seed.count}
	var bits *store.Bitset
	switch mode {
	case RefineExact:
		bits = seed.bits.Clone()
	case RefineNarrow:
		delta := andOf(remaining)
		ref.Delta = delta.Key()
		var pushed bool
		bits, pushed, err = e.evalMaskedAll(ctx, t, delta, seed.bits)
		ref.Pushed = pushed
	case RefineWiden:
		delta := orOf(remaining)
		ref.Delta = delta.Key()
		outside := seed.bits.Clone().Not()
		var extra *store.Bitset
		var pushed bool
		extra, pushed, err = e.evalMaskedAll(ctx, t, delta, outside)
		ref.Pushed = pushed
		if err == nil {
			bits = seed.bits.Clone()
			bits.Or(extra)
		}
	}
	if err != nil {
		return CohortInfo{}, Refinement{}, fmt.Errorf("engine: refine %q: %w", name, err)
	}
	// The refined result is the complete answer for p; share it with the
	// plan cache and the planner feedback like any full execution.
	if cacheable(p) {
		if e.fb != nil {
			e.fb.observe(t.gen, p.Key(), bits.Count())
		}
		if e.cache != nil {
			e.cache.put(t.gen, p.Key(), bits)
		}
	}
	return e.saveCohort(t, name, q, p, bits), ref, nil
}

// saveCohort stores a materialized result in the workspace and returns
// its descriptor. The workspace takes ownership of bits (immutable from
// here on).
func (e *Engine) saveCohort(t *topo, name string, q query.Expr, p Plan, bits *store.Bitset) CohortInfo {
	en := &cohortEntry{
		name:  name,
		expr:  q,
		count: bits.Count(),
		bits:  bits,
		op:    "leaf",
	}
	if cacheable(p) {
		en.key = p.Key()
	}
	switch n := p.(type) {
	case And:
		en.op = "and"
		en.subKeys = childKeys(n.Children)
	case Or:
		en.op = "or"
		en.subKeys = childKeys(n.Children)
	}
	if e.ws != nil {
		e.ws.put(t.gen, en)
	}
	return CohortInfo{Name: name, Expr: q.String(), Generation: t.gen, Count: en.count}
}

// Cohorts lists the materialized cohorts valid at the current store
// generation, sorted by name. Cohorts saved at an older generation have
// been invalidated by an append and do not appear.
func (e *Engine) Cohorts() []CohortInfo {
	t := e.topoNow()
	if e.ws == nil {
		return nil
	}
	entries := e.ws.all(t.gen)
	out := make([]CohortInfo, len(entries))
	for i, en := range entries {
		out[i] = CohortInfo{Name: en.name, Expr: en.expr.String(), Generation: t.gen, Count: en.count}
	}
	return out
}

// ErrNoCohort is returned (wrapped) when a named cohort does not exist
// at the current generation — either it was never saved, or an append
// invalidated it.
var ErrNoCohort = fmt.Errorf("no such cohort (never saved, or invalidated by an append)")

// CohortBits returns a caller-owned copy of a materialized cohort's
// bitset, valid at the current store generation.
func (e *Engine) CohortBits(name string) (*store.Bitset, CohortInfo, error) {
	t := e.topoNow()
	if e.ws == nil {
		return nil, CohortInfo{}, fmt.Errorf("engine: cohort %q: %w", name, ErrNoCohort)
	}
	en := e.ws.get(t.gen, name)
	if en == nil {
		return nil, CohortInfo{}, fmt.Errorf("engine: cohort %q: %w", name, ErrNoCohort)
	}
	return en.bits.Clone(), CohortInfo{Name: en.name, Expr: en.expr.String(), Generation: t.gen, Count: en.count}, nil
}

// DropCohort removes a materialized cohort; reports whether it existed.
func (e *Engine) DropCohort(name string) bool {
	if e.ws == nil {
		return false
	}
	return e.ws.drop(name)
}

// CohortExport is one cohort handed to the persistence layer: the saved
// expression plus the materialized bitset.
type CohortExport struct {
	Name string
	Expr query.Expr
	Bits *store.Bitset
}

// ExportCohorts returns the cohorts valid at the current generation for
// snapshot persistence, sorted by name. Bitsets are caller-owned copies.
func (e *Engine) ExportCohorts() []CohortExport {
	t := e.topoNow()
	if e.ws == nil {
		return nil
	}
	entries := e.ws.all(t.gen)
	out := make([]CohortExport, len(entries))
	for i, en := range entries {
		out[i] = CohortExport{Name: en.name, Expr: en.expr, Bits: en.bits.Clone()}
	}
	return out
}

// AdoptCohort installs an externally materialized cohort — the snapshot
// load path — binding it to the current store generation. The bitset
// must cover the population exactly and the expression must be
// canonical; the caller is trusted to pass the bits the expression
// evaluates to (snapshots are crc-validated on decode).
func (e *Engine) AdoptCohort(name string, q query.Expr, bits *store.Bitset) error {
	if err := validateCohortName(name); err != nil {
		return err
	}
	if !canonicalExpr(q) {
		return fmt.Errorf("engine: adopt cohort %q: expression contains opaque predicates", name)
	}
	t := e.topoNow()
	if bits.Len() != t.n {
		return fmt.Errorf("engine: adopt cohort %q: bitset covers %d patients, population has %d", name, bits.Len(), t.n)
	}
	p, err := Compile(q)
	if err != nil {
		return fmt.Errorf("engine: adopt cohort %q: %w", name, err)
	}
	if e.ws == nil {
		return fmt.Errorf("engine: adopt cohort %q: engine has no workspace", name)
	}
	e.saveCohort(t, name, q, e.plan(t, p), bits.Clone())
	return nil
}

// refineSeed searches the workspace for the best materialized cohort to
// seed the plan: an exact key match anywhere in the plan's shape, or —
// for a top-level And/Or — a cohort whose key covers a subset of the
// children (a saved conjunction seeds any wider conjunction, by the
// canonical order-insensitive keys). Returns the seed, the children left
// to execute, and the refinement mode; (nil, nil, "") when nothing
// seeds.
func (e *Engine) refineSeed(t *topo, p Plan) (*cohortEntry, []Plan, string) {
	if e.ws == nil || !cacheable(p) {
		return nil, nil, ""
	}
	entries := e.ws.all(t.gen)
	if len(entries) == 0 {
		return nil, nil, ""
	}
	pKey := p.Key()
	for _, en := range entries {
		if en.key != "" && en.key == pKey {
			return en, nil, RefineExact
		}
	}
	switch n := p.(type) {
	case And:
		return bestCover(entries, "and", n.Children, false)
	case Or:
		return bestCover(entries, "or", n.Children, true)
	}
	return nil, nil, ""
}

// bestCover picks the seed that minimizes delta work for an And/Or of
// children: for And the smallest cohort (fewest candidates to rescan),
// for Or the largest (fewest patients left outside the mask). Ties break
// on children covered, then name, so selection is deterministic.
func bestCover(entries []*cohortEntry, op string, children []Plan, preferLargest bool) (*cohortEntry, []Plan, string) {
	ordered := make([]string, len(children))
	for i, c := range children {
		ordered[i] = c.Key()
	}
	var best *cohortEntry
	var bestUsed []bool
	bestCovered := 0
	for _, en := range entries {
		if en.key == "" {
			continue
		}
		var need []string
		if containsKey(ordered, en.key) {
			need = []string{en.key}
		} else if en.op == op && len(en.subKeys) > 0 {
			need = en.subKeys
		} else {
			continue
		}
		used := matchMultiset(need, ordered)
		if used == nil {
			continue
		}
		covered := len(need)
		if best == nil || betterSeed(en, covered, best, bestCovered, preferLargest) {
			best, bestUsed, bestCovered = en, used, covered
		}
	}
	if best == nil {
		return nil, nil, ""
	}
	var remaining []Plan
	for i, c := range children {
		if !bestUsed[i] {
			remaining = append(remaining, c)
		}
	}
	if len(remaining) == 0 {
		return best, nil, RefineExact
	}
	if preferLargest {
		return best, remaining, RefineWiden
	}
	return best, remaining, RefineNarrow
}

func betterSeed(en *cohortEntry, covered int, best *cohortEntry, bestCovered int, preferLargest bool) bool {
	if en.count != best.count {
		if preferLargest {
			return en.count > best.count
		}
		return en.count < best.count
	}
	if covered != bestCovered {
		return covered > bestCovered
	}
	return en.name < best.name
}

func containsKey(keys []string, k string) bool {
	for _, ck := range keys {
		if ck == k {
			return true
		}
	}
	return false
}

// matchMultiset marks one child per needed key (multiset semantics:
// duplicate keys consume distinct children); nil when any key is
// unmatched.
func matchMultiset(need, childKeys []string) []bool {
	used := make([]bool, len(childKeys))
	for _, k := range need {
		found := false
		for i, ck := range childKeys {
			if !used[i] && ck == k {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return used
}

func childKeys(children []Plan) []string {
	out := make([]string, len(children))
	for i, c := range children {
		out[i] = c.Key()
	}
	sort.Strings(out)
	return out
}

func andOf(children []Plan) Plan {
	if len(children) == 1 {
		return children[0]
	}
	return And{Children: children}
}

func orOf(children []Plan) Plan {
	if len(children) == 1 {
		return children[0]
	}
	return Or{Children: children}
}

// evalMaskedAll computes eval(p) ∩ mask over the whole population. A
// local engine rides the in-process masked path; a coordinator fans the
// plan out with each shard's slice of the mask — the masked push-down
// that keeps a refinement from pulling whole index leaves back over the
// wire. Backends whose mask slice is empty are never contacted (their
// range contributes nothing). The fan-out is strict whatever the
// engine's policy: callers materialize the result, and a degraded cohort
// must never be saved. Reports whether the mask was pushed to backends.
func (e *Engine) evalMaskedAll(ctx context.Context, t *topo, p Plan, mask *store.Bitset) (*store.Bitset, bool, error) {
	if mask.Count() == 0 {
		return t.empty(), false, nil
	}
	if t.view != nil {
		b, err := e.evalMasked(ctx, t, p, mask)
		return b, false, err
	}
	out, _, err := e.strictFanout(ctx, t, func(ctx context.Context, _ int, b ShardBackend) (*store.Bitset, error) {
		m := b.Meta()
		if !mask.AnyInRange(m.Offset, m.Offset+m.Patients) {
			return store.NewBitset(m.Patients), nil
		}
		return b.EvalPlan(ctx, p, mask.SliceRange(m.Offset, m.Offset+m.Patients))
	})
	return out, true, err
}
