package engine

import (
	"context"
	"hash/crc32"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// TestRemoteCohortRefineParity: on a coordinator over remote shard
// servers, a narrowing refinement must push the parent mask down to the
// shards (Pushed=true) and still return exactly the bits a from-scratch
// execution and the per-history scan produce — at shard counts
// {1, 4, 16}.
func TestRemoteCohortRefineParity(t *testing.T) {
	col, st, _ := parityEngines(t)
	parent := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
	narrow := query.And{parent, query.SexIs(model.SexFemale)}
	widen := query.Or{parent, query.Has{Pred: query.TypeIs(model.TypeMedication)}}

	for _, shards := range []int{1, 4, 16} {
		fix := startShardServers(t, col, shards, 2, RemoteOptions{Timeout: 30 * time.Second})
		ctx := context.Background()
		if _, err := fix.eng.Materialize(ctx, "diag", parent); err != nil {
			t.Fatalf("shards=%d Materialize: %v", shards, err)
		}
		for name, tc := range map[string]struct {
			q    query.Expr
			mode string
		}{
			"narrow": {narrow, RefineNarrow},
			"widen":  {widen, RefineWiden},
		} {
			_, ref, err := fix.eng.Refine(ctx, name, tc.q)
			if err != nil {
				t.Fatalf("shards=%d Refine(%s): %v", shards, name, err)
			}
			if ref.Mode != tc.mode || ref.Seed != "diag" {
				t.Fatalf("shards=%d Refine(%s) = %+v, want %s seeded by \"diag\"", shards, name, ref, tc.mode)
			}
			if !ref.Pushed {
				t.Errorf("shards=%d Refine(%s): Pushed=false — the mask was not shipped to the remote shards", shards, name)
			}
			bits, _, err := fix.eng.CohortBits(name)
			if err != nil {
				t.Fatal(err)
			}
			want := scanBits(col, st, tc.q)
			if !bits.Equal(want) {
				t.Errorf("shards=%d remote refine %s diverges from scan: %d vs %d",
					shards, name, bits.Count(), want.Count())
			}
			fresh, err := fix.eng.Execute(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(fresh) {
				t.Errorf("shards=%d remote refine %s diverges from from-scratch Execute", shards, name)
			}
		}

		// Remote profile merge: per-shard partial tallies over the RPC
		// must merge to the local engine's aggregate.
		window := model.Period{Start: model.Date(2005, 1, 1), End: model.Date(2015, 1, 1)}
		bits := scanBits(col, st, parent)
		remoteProf, err := fix.eng.Profile(bits, window)
		if err != nil {
			t.Fatalf("shards=%d remote Profile: %v", shards, err)
		}
		localProf, err := New(st, Options{Shards: 4, Workers: 2}).Profile(bits, window)
		if err != nil {
			t.Fatal(err)
		}
		if remoteProf != localProf {
			t.Errorf("shards=%d remote profile diverges from local:\n remote %+v\n local  %+v",
				shards, remoteProf, localProf)
		}
	}
}

// TestRemoteCohortMaskWireHardening drives hostile masks straight at a
// shard server over raw RPC: wrong checksum, truncated container
// stream, garbage bytes, wrong population. Every one must come back as
// a loud error — never a panic, never a silently wrong bitset.
func TestRemoteCohortMaskWireHardening(t *testing.T) {
	col, _, _ := parityEngines(t)
	fix := startShardServers(t, col, 1, 1, RemoteOptions{Timeout: 30 * time.Second})
	client, err := rpc.Dial("tcp", fix.listeners[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	plan, err := Compile(query.TrueExpr{})
	if err != nil {
		t.Fatal(err)
	}
	planBytes, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	crcOf := func(b []byte) uint32 { return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli)) }

	mask := store.NewBitset(col.Len())
	for i := 0; i < col.Len(); i += 3 {
		mask.Set(i)
	}
	good, err := mask.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: a well-formed mask is accepted.
	var reply EvalReply
	if err := client.Call("PastasShard.Eval", &EvalArgs{Plan: planBytes, Mask: good, MaskCRC: crcOf(good)}, &reply); err != nil {
		t.Fatalf("well-formed masked Eval rejected: %v", err)
	}
	got := new(store.Bitset)
	if err := got.UnmarshalBinary(reply.Bits); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(mask) {
		t.Fatalf("masked TrueExpr returned %d patients, want the mask's %d", got.Count(), mask.Count())
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xff
	hostile := []struct {
		name string
		args EvalArgs
		want string
	}{
		{"wrong crc", EvalArgs{Plan: planBytes, Mask: good, MaskCRC: crcOf(good) ^ 0xdeadbeef}, "mask checksum mismatch"},
		{"flipped byte, stale crc", EvalArgs{Plan: planBytes, Mask: flipped, MaskCRC: crcOf(good)}, "mask checksum mismatch"},
		{"truncated, recomputed crc", EvalArgs{Plan: planBytes, Mask: good[:len(good)-3], MaskCRC: crcOf(good[:len(good)-3])}, ""},
		{"garbage, recomputed crc", EvalArgs{Plan: planBytes, Mask: []byte{0xff, 0x01, 0x02}, MaskCRC: crcOf([]byte{0xff, 0x01, 0x02})}, ""},
	}
	for _, tc := range hostile {
		var reply EvalReply
		err := client.Call("PastasShard.Eval", &tc.args, &reply)
		if err == nil {
			t.Errorf("Eval(%s): accepted a hostile mask", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Eval(%s): error %q does not name the checksum mismatch", tc.name, err)
		}
	}

	// Wrong-population mask: valid container stream, valid crc, wrong
	// patient count for the shard.
	short, err := store.NewBitset(10).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Call("PastasShard.Eval", &EvalArgs{Plan: planBytes, Mask: short, MaskCRC: crcOf(short)}, &reply); err == nil {
		t.Error("Eval accepted a mask sized for a different population")
	}

	// The profile RPC shares the mask codec and must share the checks.
	var preply ProfileReply
	pargs := ProfileArgs{Mask: good, MaskCRC: crcOf(good) ^ 1, Window: model.Period{Start: model.Date(2000, 1, 1), End: model.Date(2020, 1, 1)}}
	if err := client.Call("PastasShard.Profile", &pargs, &preply); err == nil {
		t.Error("Profile accepted a mask with a wrong checksum")
	} else if !strings.Contains(err.Error(), "mask checksum mismatch") {
		t.Errorf("Profile hostile-mask error %q does not name the checksum mismatch", err)
	}
}

// TestCohortRefineUnderConcurrentIngest races refinements against a
// sustained ingest stream. Every successful refinement reports the
// generation it evaluated at; its cardinality must equal the reference
// interpreter's count over that exact frozen generation — a stale seed
// or a torn mask would produce a count matching no generation. Run with
// -race in CI.
func TestCohortRefineUnderConcurrentIngest(t *testing.T) {
	const basePop = 200
	const rounds = 10
	st := store.New(fbCollection(basePop))
	e := New(st, Options{Shards: 4, Workers: 4, CacheSize: 32})

	parent := valueScan(0, 94)
	narrow := query.And{parent, valueScan(40, 60)}

	refs := make([]int, rounds+1)
	record := func(g uint64) error {
		frozen := st.Freeze()
		bits, err := query.EvalIndexed(frozen, narrow)
		if err != nil {
			return err
		}
		refs[g] = bits.Count()
		return nil
	}
	if err := record(0); err != nil {
		t.Fatal(err)
	}

	type obs struct {
		gen   uint64
		count int
	}
	var samples []obs
	errCh := make(chan error, 2)
	done := make(chan struct{})

	go func() {
		defer close(done)
		for round := 1; round <= rounds; round++ {
			i := basePop + round - 1
			h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1960, 1, 1)})
			h.Add(model.Entry{
				ID: uint64(2 * i), Kind: model.Point, Start: model.Date(2012, 1, 1), End: model.Date(2012, 1, 1),
				Type: model.TypeMeasurement, Source: model.Source(1), Value: float64(i % 100),
			})
			if _, err := st.Append(store.AppendBatch{NewHistories: []*model.History{h}}); err != nil {
				errCh <- err
				return
			}
			if err := record(uint64(round)); err != nil {
				errCh <- err
				return
			}
		}
	}()

	ctx := context.Background()
	for {
		if _, err := e.Materialize(ctx, "p", parent); err != nil {
			errCh <- err
			break
		}
		info, _, err := e.Refine(ctx, "n", narrow)
		if err != nil {
			errCh <- err
			break
		}
		samples = append(samples, obs{info.Generation, info.Count})
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	<-done
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if len(samples) == 0 {
		t.Fatal("no refinement samples collected")
	}
	for _, o := range samples {
		if o.gen > rounds {
			t.Fatalf("refinement reports generation %d beyond the %d appends", o.gen, rounds)
		}
		if o.count != refs[o.gen] {
			t.Fatalf("refinement at generation %d returned %d patients, reference says %d — stale seed or torn mask",
				o.gen, o.count, refs[o.gen])
		}
	}
}
