package engine

import (
	"strings"
	"testing"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

func mustPlan(t *testing.T, e query.Expr) Plan {
	t.Helper()
	p, err := Compile(e)
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	return p
}

var (
	idxDiag  = query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", "T90")}}
	idxStay  = query.Has{Pred: query.TypeIs(model.TypeStay)}
	scanOnly = query.Has{Pred: query.MustCode("", "T90"), MinCount: 3}
)

func TestCompileClassification(t *testing.T) {
	cases := []struct {
		expr      query.Expr
		wantIndex bool
	}{
		{query.Has{Pred: query.MustCode("ICPC2", "T90")}, true},
		{query.Has{Pred: query.MustCode("", "T90")}, true},
		{idxDiag, true},
		{idxStay, true},
		{query.Has{Pred: query.SourceIs(model.SourceGP)}, true},
		{query.Has{Pred: query.AllOf{query.TypeIs(model.TypeMedication), query.MustCode("", "A10")}}, true},
		{scanOnly, false},
		{query.Has{Pred: query.AllOf{query.TypeIs(model.TypeStay), query.MustCode("", "I21")}}, false},
		{query.Has{Pred: query.KindIs(model.Interval)}, false},
		{query.SexIs(model.SexFemale), false},
	}
	for _, c := range cases {
		p := mustPlan(t, c.expr)
		_, isIndex := p.(IndexScan)
		if isIndex != c.wantIndex {
			t.Errorf("Compile(%s) = %s, want index=%v", c.expr, p, c.wantIndex)
		}
	}
}

func TestCompileRejectsBadPattern(t *testing.T) {
	bad := query.Has{Pred: &query.Code{System: "ICPC2", Pattern: "("}}
	if _, err := Compile(bad); err == nil {
		t.Error("Compile accepted an invalid regex")
	}
	eng := New(store.New(model.MustCollection()), Options{})
	if _, err := eng.Execute(bad); err == nil {
		t.Error("Execute accepted an invalid regex")
	}
}

func TestOptimizeFlattensNestedBooleans(t *testing.T) {
	p := Optimize(mustPlan(t, query.And{query.And{idxDiag, idxStay}, scanOnly}))
	and, ok := p.(And)
	if !ok || len(and.Children) != 3 {
		t.Fatalf("got %s, want flattened 3-child and", p)
	}
	p = Optimize(mustPlan(t, query.Or{query.Or{idxDiag, idxStay}, query.Or{scanOnly}}))
	or, ok := p.(Or)
	if !ok || len(or.Children) != 3 {
		t.Fatalf("got %s, want flattened 3-child or", p)
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	cases := []struct {
		expr query.Expr
		want Plan
	}{
		{query.Not{E: query.TrueExpr{}}, None{}},
		{query.Not{E: query.Not{E: query.TrueExpr{}}}, All{}},
		{query.And{query.TrueExpr{}, query.TrueExpr{}}, All{}},
		{query.And{idxStay, query.Not{E: query.TrueExpr{}}}, None{}},
		{query.Or{idxStay, query.TrueExpr{}}, All{}},
		{query.And{}, All{}},
		{query.Or{}, None{}},
	}
	for _, c := range cases {
		got := Optimize(mustPlan(t, c.expr))
		if got.Key() != c.want.Key() {
			t.Errorf("Optimize(%s) = %s, want %s", c.expr, got, c.want)
		}
	}
	// Neutral elements drop out without collapsing the node.
	p := Optimize(mustPlan(t, query.And{query.TrueExpr{}, idxStay}))
	if _, ok := p.(IndexScan); !ok {
		t.Errorf("And{true, x} should collapse to x, got %s", p)
	}
}

func TestOptimizeDedupesSiblings(t *testing.T) {
	p := Optimize(mustPlan(t, query.And{idxDiag, idxDiag, idxStay}))
	and, ok := p.(And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("duplicate sibling survived: %s", p)
	}
	if got := Optimize(mustPlan(t, query.Or{scanOnly, scanOnly})); hasScan(got) {
		if _, single := got.(Scan); !single {
			t.Errorf("Or of identical scans should collapse to one: %s", got)
		}
	}
}

func TestOptimizeHoistsIndexLeavesFirst(t *testing.T) {
	p := Optimize(mustPlan(t, query.And{scanOnly, idxDiag, idxStay}))
	and, ok := p.(And)
	if !ok {
		t.Fatalf("got %s", p)
	}
	if hasScan(and.Children[0]) || hasScan(and.Children[1]) || !hasScan(and.Children[2]) {
		t.Errorf("scan leaf not hoisted last: %s", p)
	}
	// Stable among the index leaves: idxDiag stays ahead of idxStay.
	if !strings.Contains(and.Children[0].String(), "ICPC2") {
		t.Errorf("hoist not stable: %s", p)
	}
}

func TestKeyIsOrderInsensitive(t *testing.T) {
	a := Optimize(mustPlan(t, query.And{idxDiag, scanOnly}))
	b := Optimize(mustPlan(t, query.And{scanOnly, idxDiag}))
	if a.Key() != b.Key() {
		t.Errorf("And keys differ by child order:\n %s\n %s", a.Key(), b.Key())
	}
	if a.String() != b.String() {
		// Execution order is canonicalized too (hoisting), so the
		// rendered plans should agree here as well.
		t.Errorf("hoisted plans differ: %s vs %s", a, b)
	}
	n1 := Optimize(mustPlan(t, query.Or{idxStay, idxDiag}))
	n2 := Optimize(mustPlan(t, query.Or{idxDiag, idxStay}))
	if n1.Key() != n2.Key() {
		t.Errorf("Or keys differ by child order")
	}
}

// TestOpaquePredicatesNeverConflate: MatchFunc closures stringify by name
// only, so two different functions can render identically. Neither the
// plan cache nor the optimizer's sibling dedupe may treat them as equal.
func TestOpaquePredicatesNeverConflate(t *testing.T) {
	hs := make([]*model.History, 8)
	for i := range hs {
		hs[i] = model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1950, 1, 1)})
		hs[i].Add(model.Entry{ID: 1, Kind: model.Point, Start: model.Date(2010, 1, 1), End: model.Date(2010, 1, 1),
			Type: model.TypeContact, Value: float64(i)})
	}
	st := store.New(model.MustCollection(hs...))
	eng := New(st, Options{Shards: 2, CacheSize: 16})

	low := query.Has{Pred: query.MatchFunc{Fn: func(e *model.Entry) bool { return e.Value < 4 }}}
	high := query.Has{Pred: query.MatchFunc{Fn: func(e *model.Entry) bool { return e.Value >= 4 }}}

	// Same rendered string, different semantics: the cache must not serve
	// the first result for the second query.
	b1, err := eng.Execute(low)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := eng.Execute(high)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Count() != 4 || b2.Count() != 4 || b1.Equal(b2) {
		t.Fatalf("opaque predicates conflated: low=%d high=%d", b1.Count(), b2.Count())
	}

	// Dedupe must not collapse distinct opaque siblings either.
	both, err := eng.Execute(query.And{low, high})
	if err != nil {
		t.Fatal(err)
	}
	if both.Count() != 0 {
		t.Fatalf("And of disjoint opaque predicates = %d, want 0", both.Count())
	}
	p, err := Explain(query.And{low, high})
	if err != nil {
		t.Fatal(err)
	}
	if and, ok := p.(And); !ok || len(and.Children) != 2 {
		t.Fatalf("distinct opaque siblings deduped: %s", p)
	}
}

// TestSequenceGapsKeyAtFullResolution: sequence gap constraints are set
// in minutes; the rendered plan key must distinguish sub-day differences
// or the cache/dedupe would conflate semantically different patterns.
func TestSequenceGapsKeyAtFullResolution(t *testing.T) {
	seq := func(min model.Time) query.Expr {
		return query.Sequence{Steps: []query.Step{
			{Pred: query.TypeIs(model.TypeDiagnosis)},
			{Pred: query.TypeIs(model.TypeContact), MinGap: min},
		}}
	}
	a := mustPlan(t, seq(1*model.Hour))
	b := mustPlan(t, seq(23*model.Hour))
	if a.Key() == b.Key() {
		t.Fatalf("sub-day gap difference lost in key: %s", a.Key())
	}
	c := mustPlan(t, seq(2*model.Day))
	d := mustPlan(t, seq(3*model.Day))
	if c.Key() == d.Key() {
		t.Fatalf("whole-day gap difference lost in key: %s", c.Key())
	}
}

func TestNewClampsShards(t *testing.T) {
	hs := make([]*model.History, 10)
	for i := range hs {
		hs[i] = model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1950, 1, 1)})
	}
	st := store.New(model.MustCollection(hs...))
	if got := New(st, Options{Shards: 64}).NumShards(); got > 10 {
		t.Errorf("shards %d exceed population 10", got)
	}
	if got := New(st, Options{Shards: 0}).NumShards(); got != 1 {
		t.Errorf("zero shards should clamp to 1, got %d", got)
	}
	empty := New(store.New(model.MustCollection()), Options{Shards: 8})
	if got := empty.NumShards(); got != 1 {
		t.Errorf("empty store should have 1 shard, got %d", got)
	}
	b, err := empty.Execute(query.TrueExpr{})
	if err != nil || b.Count() != 0 {
		t.Errorf("empty store All = %v, %v", b, err)
	}
}
