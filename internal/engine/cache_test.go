package engine

import (
	"fmt"
	"sync"
	"testing"

	"pastas/internal/store"
)

// TestPlanCacheCloneIsolation: the cache must hand out clones — mutating
// a returned bitset (or the bitset that was put) can never corrupt the
// cached value.
func TestPlanCacheCloneIsolation(t *testing.T) {
	c := newPlanCache(4)
	b := store.NewBitset(128)
	b.Set(3)
	c.put(0, "k", b)
	b.Set(99) // caller keeps mutating after put

	got, ok := c.get(0, "k")
	if !ok {
		t.Fatal("miss on just-put key")
	}
	if got.Get(99) {
		t.Error("put did not isolate the cached copy from the caller's bitset")
	}
	got.Set(77) // caller mutates the returned clone
	again, _ := c.get(0, "k")
	if again.Get(77) {
		t.Error("get returned a shared bitset, not a clone")
	}
}

// TestPlanCacheConcurrentGetPut hammers get/put/stats/reset from many
// goroutines. Under -race this pins the invariant behind the
// clone-outside-the-mutex optimization: cached bitsets are immutable, so
// cloning after unlock is safe even while the entry is being evicted or
// replaced.
func TestPlanCacheConcurrentGetPut(t *testing.T) {
	c := newPlanCache(8)
	n := store.NewBitset(4096)
	for i := 0; i < 4096; i += 3 {
		n.Set(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16) // 16 keys over capacity 8: constant eviction
				if b, ok := c.get(0, key); ok {
					b.Not() // mutate the clone; must not corrupt the cache
					if b.Len() != 4096 {
						t.Errorf("clone capacity %d", b.Len())
						return
					}
				} else {
					c.put(0, key, n)
				}
				if i%100 == 0 {
					_ = c.stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if b, ok := c.get(0, "k0"); ok {
		want := n.Count()
		if b.Count() != want {
			t.Errorf("cached bitset corrupted: %d set bits, want %d", b.Count(), want)
		}
	}
	st := c.stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no cache traffic recorded")
	}
	if st.Entries > 8 {
		t.Errorf("LRU grew past capacity: %d entries", st.Entries)
	}
}
