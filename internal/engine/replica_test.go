package engine

// The replica-set contract: identical-meta validation at assembly,
// failover on unavailability (and only on unavailability), health
// tracking fed passively by calls and actively by the probe loop, and
// a load balancer that keeps serving as long as any member lives.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// replicaFixture builds a replica set of n FaultBackend-wrapped local
// views over the whole parity population (one shard), probing disabled
// unless interval > 0.
func replicaFixture(t *testing.T, n int, interval time.Duration) (*ReplicaBackend, []*FaultBackend, *store.Store) {
	t.Helper()
	_, st, _ := parityEngines(t)
	faults := make([]*FaultBackend, n)
	members := make([]ShardBackend, n)
	for i := range faults {
		faults[i] = NewFaultBackend(NewLocalBackend(st.Slice(0, st.Len()), 0))
		members[i] = faults[i]
	}
	probe := -time.Second
	if interval > 0 {
		probe = interval
	}
	rb, err := NewReplicaBackend(members, ReplicaOptions{
		ProbeInterval: probe,
		ProbeTimeout:  time.Second,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rb.Close() })
	return rb, faults, st
}

func parityPlan(t *testing.T) Plan {
	t.Helper()
	p, err := Compile(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	if err != nil {
		t.Fatal(err)
	}
	return Optimize(p)
}

// TestReplicaMetaMismatch: members advertising different shard
// identities are rejected at assembly, with an error naming both sides.
func TestReplicaMetaMismatch(t *testing.T) {
	_, st, _ := parityEngines(t)
	n := st.Len()
	a := NewLocalBackend(st.Slice(0, n), 0)
	b := NewLocalBackend(st.Slice(0, n/2), 0) // same shard id, different population
	if _, err := NewReplicaBackend([]ShardBackend{a, b}, ReplicaOptions{ProbeInterval: -1}); err == nil {
		t.Fatal("mismatched replica metas accepted")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("error does not explain the mismatch: %v", err)
	}
	c := NewLocalBackend(st.Slice(0, n), 1) // different shard id
	if _, err := NewReplicaBackend([]ShardBackend{a, c}, ReplicaOptions{ProbeInterval: -1}); err == nil {
		t.Fatal("mismatched shard ids accepted")
	}
	if _, err := NewReplicaBackend(nil, ReplicaOptions{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
}

// TestReplicaFailover: with one member failing, every operation answers
// from the survivor — same bits — and the failure lands in the health
// snapshot.
func TestReplicaFailover(t *testing.T) {
	rb, faults, st := replicaFixture(t, 2, 0)
	p := parityPlan(t)
	want, err := NewLocalBackend(st.Slice(0, st.Len()), 0).EvalPlan(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}

	faults[0].Fail()
	// A few rounds: selection is randomized, but an untried member's EWMA
	// of 0 sorts fastest, so the failed member is guaranteed a try (and a
	// markdown) within the first two calls.
	for i := 0; i < 4; i++ {
		got, err := rb.EvalPlan(context.Background(), p, nil)
		if err != nil {
			t.Fatalf("failover eval: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("failover answer diverges: %d vs %d", got.Count(), want.Count())
		}
	}
	if rb.Meta().Shard != 0 || !strings.HasPrefix(rb.Meta().Backend, "replicas(") {
		t.Errorf("replica meta = %+v", rb.Meta())
	}

	// The failed member is out of rotation and its failure is counted.
	health := rb.Health()
	if len(health) != 2 {
		t.Fatalf("got %d health entries, want 2", len(health))
	}
	if health[0].Healthy {
		t.Error("failed replica still marked healthy")
	}
	if health[0].Failures == 0 {
		t.Error("failure not counted")
	}
	if !health[1].Healthy || health[1].Calls == 0 {
		t.Errorf("survivor state = %+v", health[1])
	}
	if !rb.Healthy() {
		t.Error("set with a live member reported unhealthy")
	}

	// Every other operation fails over the same way.
	if _, err := rb.Stats(context.Background()); err != nil {
		t.Errorf("Stats failover: %v", err)
	}
	if _, err := rb.IDsOf(context.Background(), want.SliceRange(0, st.Len())); err != nil {
		t.Errorf("IDsOf failover: %v", err)
	}
	if _, err := rb.FetchHistories(context.Background(), []int{0}); err != nil {
		t.Errorf("FetchHistories failover: %v", err)
	}
}

// TestReplicaAllDown: with every member failing, the call errors with an
// unavailability the degradation layer recognizes, naming the shard and
// the attempt count.
func TestReplicaAllDown(t *testing.T) {
	rb, faults, _ := replicaFixture(t, 2, 0)
	for _, f := range faults {
		f.Fail()
	}
	_, err := rb.EvalPlan(context.Background(), parityPlan(t), nil)
	if err == nil {
		t.Fatal("eval over an all-down replica set succeeded")
	}
	if !IsUnavailable(err) {
		t.Errorf("all-down error is not classified unavailable: %v", err)
	}
	if !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Errorf("error does not report the exhausted set: %v", err)
	}
	if rb.Healthy() {
		t.Error("all-down set reported healthy")
	}

	// Recovery: the next call succeeds again without any probe loop
	// (desperation retry gives downed members a second chance).
	for _, f := range faults {
		f.Recover()
	}
	if _, err := rb.EvalPlan(context.Background(), parityPlan(t), nil); err != nil {
		t.Fatalf("post-recovery eval: %v", err)
	}
}

// deterministicBackend fails every call with a non-transport error.
type deterministicBackend struct {
	ShardBackend
	calls int
}

func (d *deterministicBackend) EvalPlan(context.Context, Plan, *store.Bitset) (*store.Bitset, error) {
	d.calls++
	return nil, fmt.Errorf("engine: semantic refusal")
}

// TestReplicaDeterministicErrorNoFailover: a semantic error returns
// immediately — no retries, no marking down — because every replica
// would answer the same.
func TestReplicaDeterministicErrorNoFailover(t *testing.T) {
	_, st, _ := parityEngines(t)
	det := &deterministicBackend{ShardBackend: NewLocalBackend(st.Slice(0, st.Len()), 0)}
	healthy := NewLocalBackend(st.Slice(0, st.Len()), 0)
	rb, err := NewReplicaBackend([]ShardBackend{det, healthy}, ReplicaOptions{ProbeInterval: -1, MaxAttempts: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	sawDeterministic := false
	for i := 0; i < 32 && !sawDeterministic; i++ {
		_, err := rb.EvalPlan(context.Background(), parityPlan(t), nil)
		sawDeterministic = err != nil
		if err != nil {
			if IsUnavailable(err) {
				t.Fatalf("semantic error classified unavailable: %v", err)
			}
			if !strings.Contains(err.Error(), "semantic refusal") {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	if !sawDeterministic {
		t.Fatal("selection never routed to the deterministic backend")
	}
	if det.calls != 1 {
		t.Errorf("deterministic backend called %d times in the failing call, want 1", det.calls)
	}
	for _, h := range rb.Health() {
		if !h.Healthy {
			t.Errorf("semantic error marked %s down", h.Backend)
		}
	}
}

// TestReplicaContextDeadline: an expired caller budget stops the
// failover loop instead of grinding through backoff rounds.
func TestReplicaContextDeadline(t *testing.T) {
	rb, faults, _ := replicaFixture(t, 2, 0)
	for _, f := range faults {
		f.Fail()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := rb.EvalPlan(ctx, parityPlan(t), nil)
	if err == nil {
		t.Fatal("eval under a dead budget succeeded")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("deadline error not classified unavailable: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("failover loop ran %s past a 10ms budget", elapsed)
	}
}

// TestReplicaHealthLoop: the active prober takes a dead member out of
// rotation while the set is idle, and puts it back after recovery —
// without any query traffic risking the dead member.
func TestReplicaHealthLoop(t *testing.T) {
	rb, faults, _ := replicaFixture(t, 2, 5*time.Millisecond)
	faults[0].Fail()
	waitFor(t, time.Second, func() bool { return !rb.Health()[0].Healthy })
	if !rb.Healthy() {
		t.Error("set with one live member reported unhealthy")
	}
	faults[0].Recover()
	waitFor(t, time.Second, func() bool { return rb.Health()[0].Healthy })
}

// TestReplicaBalancesLoad: with both members healthy, sustained traffic
// reaches both (power-of-two-choices never pins a single member).
func TestReplicaBalancesLoad(t *testing.T) {
	rb, faults, _ := replicaFixture(t, 2, 0)
	p := parityPlan(t)
	for i := 0; i < 64; i++ {
		if _, err := rb.EvalPlan(context.Background(), p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if faults[0].Calls() == 0 || faults[1].Calls() == 0 {
		t.Errorf("load not spread: member calls = %d, %d", faults[0].Calls(), faults[1].Calls())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
