package engine

// Cohort-characteristics aggregation over the backend set: the
// compare-cohorts half of the workspace. Same architecture as
// Indicators — every backend tallies its slice of the cohort
// server-side into a fixed-size integral partial, the partials merge
// exactly (integer sums are associative), and the result is
// bit-identical to a sequential pass at any shard count over any
// transport mix. Shards without a cohort member are never contacted,
// and no history ever crosses the wire.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pastas/internal/model"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// Profile aggregates the dimension breakdown for the cohort a
// global-ordinal bitset selects, over the window. Under PolicyDegraded
// the aggregate may omit unreachable shards; use ProfileStatus to learn
// which.
func (e *Engine) Profile(b *store.Bitset, window model.Period) (stats.CohortProfile, error) {
	prof, _, err := e.ProfileStatus(context.Background(), b, window)
	return prof, err
}

// ProfileStatus is Profile under a caller-supplied context, plus the
// completeness report: under PolicyDegraded the QueryStatus names the
// shards whose tallies are absent from the aggregate.
func (e *Engine) ProfileStatus(ctx context.Context, b *store.Bitset, window model.Period) (stats.CohortProfile, QueryStatus, error) {
	t := e.topoNow()
	if b.Len() != t.n {
		return stats.CohortProfile{}, QueryStatus{}, fmt.Errorf("engine: bitset covers %d patients, population has %d (re-run the query if an append landed since)", b.Len(), t.n)
	}
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	parts := make([]stats.CohortProfile, len(t.backends))
	errs := make([]error, len(t.backends))
	asked := make([]bool, len(t.backends))
	var wg sync.WaitGroup
	for i, bk := range t.backends {
		m := bk.Meta()
		if !b.AnyInRange(m.Offset, m.Offset+m.Patients) {
			continue
		}
		asked[i] = true
		mask := b.SliceRange(m.Offset, m.Offset+m.Patients)
		wg.Add(1)
		go func(i int, bk ShardBackend, mask *store.Bitset) {
			defer wg.Done()
			t0 := time.Now()
			parts[i], errs[i] = bk.Profile(ctx, mask, window)
			t.record(i, t0, errs[i])
		}(i, bk, mask)
	}
	wg.Wait()
	var prof stats.CohortProfile
	var missing []int
	for i := range parts {
		if errs[i] != nil {
			if e.policy == PolicyDegraded && IsUnavailable(errs[i]) && ctx.Err() == nil {
				t.metrics[i].skips.Add(1)
				missing = append(missing, i)
				continue
			}
			return stats.CohortProfile{}, QueryStatus{}, fmt.Errorf("engine: profile from shard %d (%s): %w",
				t.backends[i].Meta().Shard, t.backends[i].Meta().Backend, errs[i])
		}
		if asked[i] {
			prof.Merge(parts[i])
		}
	}
	return prof, e.statusFromMissing(t, missing), nil
}
