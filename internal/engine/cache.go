package engine

import (
	"container/list"
	"sync"

	"pastas/internal/store"
)

// planCache is a mutex-guarded LRU over canonical plan keys. Values are
// stored as immutable bitsets; get returns a clone the caller owns, so
// cached cohorts can never be corrupted by downstream set algebra.
type planCache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List
	byKey        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key  string
	bits *store.Bitset
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		return nil
	}
	return &planCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

func (c *planCache) get(key string) (*store.Bitset, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	var bits *store.Bitset
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		bits = el.Value.(*cacheEntry).bits
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	// Clone outside the critical section: cached bitsets are immutable
	// once stored, and copying a 168k-patient cohort under c.mu would
	// serialize every executor goroutine on the cache mutex. The entry
	// may be evicted concurrently, but the bits slice it points to is
	// never written again, so the clone stays consistent.
	return bits.Clone(), true
}

func (c *planCache) put(key string, b *store.Bitset) {
	// Clone before taking the mutex (see get): the caller owns b and may
	// mutate it after put returns, so the cache stores a private copy,
	// but the copy itself need not happen under the lock.
	clone := b.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).bits = clone
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, bits: clone})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element, c.max)
	c.hits, c.misses = 0, 0
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}

// CacheStats reports plan-cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}
