package engine

import (
	"container/list"
	"sync"

	"pastas/internal/store"
)

// planCache is a mutex-guarded LRU over canonical plan keys. Values are
// stored as immutable bitsets; get returns a clone the caller owns, so
// cached cohorts can never be corrupted by downstream set algebra.
type planCache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List
	byKey        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key  string
	bits *store.Bitset
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		return nil
	}
	return &planCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

func (c *planCache) get(key string) (*store.Bitset, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).bits.Clone(), true
}

func (c *planCache) put(key string, b *store.Bitset) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).bits = b.Clone()
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, bits: b.Clone()})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element, c.max)
	c.hits, c.misses = 0, 0
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}

// CacheStats reports plan-cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}
