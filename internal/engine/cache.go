package engine

import (
	"container/list"
	"sync"

	"pastas/internal/store"
)

// planCache is a mutex-guarded LRU over canonical plan keys, epoched by
// the store generation: every get and put carries the generation its
// caller evaluated against, entries from any other generation are
// invisible, and the first access at a newer generation drops the old
// entries wholesale (invalidate-on-advance — no lock-the-world sweep, and
// a straggler put from a query that raced an append is silently
// discarded rather than poisoning the new generation). Values are stored
// as immutable bitsets; get returns a clone the caller owns, so cached
// cohorts can never be corrupted by downstream set algebra.
type planCache struct {
	mu           sync.Mutex
	max          int
	gen          uint64
	ll           *list.List
	byKey        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key  string
	bits *store.Bitset
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		return nil
	}
	return &planCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

func (c *planCache) get(gen uint64, key string) (*store.Bitset, bool) {
	c.mu.Lock()
	if gen != c.gen {
		if gen > c.gen {
			c.clearLocked()
			c.gen = gen
		}
		// gen < c.gen: a reader still on a superseded generation; its
		// entries are long gone either way.
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	el, ok := c.byKey[key]
	var bits *store.Bitset
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		bits = el.Value.(*cacheEntry).bits
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	// Clone outside the critical section: cached bitsets are immutable
	// once stored, and copying a 168k-patient cohort under c.mu would
	// serialize every executor goroutine on the cache mutex. The entry
	// may be evicted concurrently, but the bits slice it points to is
	// never written again, so the clone stays consistent.
	return bits.Clone(), true
}

func (c *planCache) put(gen uint64, key string, b *store.Bitset) {
	// Clone before taking the mutex (see get): the caller owns b and may
	// mutate it after put returns, so the cache stores a private copy,
	// but the copy itself need not happen under the lock.
	clone := b.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			return // stale writer: its generation has been superseded
		}
		c.clearLocked()
		c.gen = gen
	}
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).bits = clone
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, bits: clone})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// clearLocked drops every entry; the caller holds c.mu.
func (c *planCache) clearLocked() {
	c.ll.Init()
	c.byKey = make(map[string]*list.Element, c.max)
}

func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clearLocked()
	c.hits, c.misses = 0, 0
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}

// CacheStats reports plan-cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}
