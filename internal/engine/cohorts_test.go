package engine

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// cohortEngines builds fresh engines over the shared parity fixture so
// materialized cohorts cannot leak into other tests' workspaces.
func cohortEngines(t testing.TB) (*model.Collection, *store.Store, []*Engine) {
	t.Helper()
	col, st, _ := parityEngines(t)
	var engines []*Engine
	for _, shards := range []int{1, 4, 16} {
		engines = append(engines, New(st, Options{Shards: shards, Workers: 4, CacheSize: 32}))
	}
	return col, st, engines
}

// TestCohortRefineParityFixed drives the recognizer through every mode
// — exact, narrow, widen, narrow-with-negation, scratch — and checks
// each refined bitset against the per-history scan, the legacy
// interpreter, and a from-scratch Execute, at shard counts {1, 4, 16}.
func TestCohortRefineParityFixed(t *testing.T) {
	col, st, engines := cohortEngines(t)
	parent := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
	narrow := query.And{parent, query.SexIs(model.SexFemale)}
	widen := query.Or{parent, query.Has{Pred: query.TypeIs(model.TypeMedication)}}
	excl := query.And{parent, query.Not{E: query.Has{Pred: query.MustCode("", `K8.`)}}}

	for _, e := range engines {
		ctx := context.Background()
		info, err := e.Materialize(ctx, "diag", parent)
		if err != nil {
			t.Fatalf("shards=%d Materialize: %v", e.NumShards(), err)
		}
		if want := scanBits(col, st, parent); info.Count != want.Count() {
			t.Fatalf("shards=%d materialized count %d, scan %d", e.NumShards(), info.Count, want.Count())
		}

		cases := []struct {
			name string
			q    query.Expr
			mode string
		}{
			{"exact", parent, RefineExact},
			{"narrow", narrow, RefineNarrow},
			{"widen", widen, RefineWiden},
			{"excl", excl, RefineNarrow},
			{"scratch", query.Has{Pred: query.TypeIs(model.TypeStay)}, RefineScratch},
		}
		for _, tc := range cases {
			_, ref, err := e.Refine(ctx, "r-"+tc.name, tc.q)
			if err != nil {
				t.Fatalf("shards=%d Refine(%s): %v", e.NumShards(), tc.name, err)
			}
			if ref.Mode != tc.mode {
				t.Errorf("shards=%d Refine(%s): mode %q, want %q", e.NumShards(), tc.name, ref.Mode, tc.mode)
			}
			if tc.mode != RefineScratch && ref.Seed != "diag" {
				t.Errorf("shards=%d Refine(%s): seed %q, want \"diag\"", e.NumShards(), tc.name, ref.Seed)
			}
			if ref.Pushed {
				t.Errorf("shards=%d Refine(%s): Pushed=true on a local engine", e.NumShards(), tc.name)
			}
			bits, _, err := e.CohortBits("r-" + tc.name)
			if err != nil {
				t.Fatalf("shards=%d CohortBits(%s): %v", e.NumShards(), tc.name, err)
			}
			want := scanBits(col, st, tc.q)
			if !bits.Equal(want) {
				t.Errorf("shards=%d Refine(%s) diverges from scan: %d vs %d",
					e.NumShards(), tc.name, bits.Count(), want.Count())
			}
			legacy, err := query.EvalIndexed(st, tc.q)
			if err != nil {
				t.Fatalf("EvalIndexed(%s): %v", tc.name, err)
			}
			if !bits.Equal(legacy) {
				t.Errorf("shards=%d Refine(%s) diverges from EvalIndexed", e.NumShards(), tc.name)
			}
			fresh, err := e.Execute(tc.q)
			if err != nil {
				t.Fatalf("shards=%d Execute(%s): %v", e.NumShards(), tc.name, err)
			}
			if !bits.Equal(fresh) {
				t.Errorf("shards=%d Refine(%s) diverges from from-scratch Execute", e.NumShards(), tc.name)
			}
		}
	}
}

// TestCohortRefineParityRandom is the property test: a random parent
// cohort refined by random narrowing / widening / excluding deltas must
// be bit-identical to the per-history scan regardless of which mode the
// recognizer picks.
func TestCohortRefineParityRandom(t *testing.T) {
	col, st, engines := cohortEngines(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		parent := randExpr(r, 1)
		delta := randLeaf(r)
		e := engines[r.Intn(len(engines))]
		ctx := context.Background()
		if _, err := e.Materialize(ctx, "p", parent); err != nil {
			t.Fatalf("Materialize(%s): %v", parent, err)
		}
		for name, q := range map[string]query.Expr{
			"n": query.And{parent, delta},
			"w": query.Or{parent, delta},
			"x": query.And{parent, query.Not{E: delta}},
		} {
			_, _, err := e.Refine(ctx, name, q)
			if err != nil {
				t.Fatalf("Refine(%s): %v", q, err)
			}
			bits, _, err := e.CohortBits(name)
			if err != nil {
				t.Fatal(err)
			}
			if want := scanBits(col, st, q); !bits.Equal(want) {
				t.Errorf("shards=%d refine %s diverges from scan for %s: %d vs %d",
					e.NumShards(), name, q, bits.Count(), want.Count())
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCohortInvalidationAcrossGenerations: a cohort materialized at
// generation G must be invisible at G+1 — not listed, not a seed for
// Explain or Refine — because the population it was computed over no
// longer exists.
func TestCohortInvalidationAcrossGenerations(t *testing.T) {
	st := store.New(fbCollection(300))
	e := New(st, Options{Shards: 4, CacheSize: 32})
	ctx := context.Background()

	parent := valueScan(0, 94)
	if _, err := e.Materialize(ctx, "base", parent); err != nil {
		t.Fatal(err)
	}
	if got := e.Cohorts(); len(got) != 1 || got[0].Name != "base" {
		t.Fatalf("Cohorts() = %+v, want one entry \"base\"", got)
	}
	narrow := query.And{parent, valueScan(90, 94)}
	x, err := e.Explain(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if x.Seed == nil || x.Seed.Cohort != "base" || x.Seed.Mode != RefineNarrow {
		t.Fatalf("Explain before append: seed %+v, want narrow from \"base\"", x.Seed)
	}

	h := model.NewHistory(model.Patient{ID: model.PatientID(10001), Birth: model.Date(1990, 1, 1)})
	h.Add(model.Entry{ID: 900001, Kind: model.Point, Start: model.Date(2012, 1, 1), End: model.Date(2012, 1, 1),
		Type: model.TypeMeasurement, Source: model.Source(1), Value: 50})
	if _, err := st.Append(store.AppendBatch{NewHistories: []*model.History{h}}); err != nil {
		t.Fatal(err)
	}

	if got := e.Cohorts(); len(got) != 0 {
		t.Fatalf("Cohorts() after append = %+v, want empty: a generation-G cohort must not survive G+1", got)
	}
	x, err = e.Explain(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if x.Seed != nil {
		t.Fatalf("Explain after append still reports seed %+v — a stale cohort is seeding plans", x.Seed)
	}
	_, ref, err := e.Refine(ctx, "post", narrow)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mode != RefineScratch {
		t.Fatalf("Refine after append: mode %q, want scratch (stale cohort must not seed)", ref.Mode)
	}
}

// TestCohortRefineAfterAppendParity: re-materializing after an append
// and refining again must be parity-identical to a from-scratch
// evaluation over the grown population.
func TestCohortRefineAfterAppendParity(t *testing.T) {
	col := fbCollection(300)
	st := store.New(col)
	e := New(st, Options{Shards: 4, CacheSize: 32})
	ctx := context.Background()

	parent := valueScan(0, 94)
	narrow := query.And{parent, valueScan(40, 60)}
	if _, err := e.Materialize(ctx, "base", parent); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		h := model.NewHistory(model.Patient{ID: model.PatientID(20001 + i), Birth: model.Date(1985, 1, 1)})
		h.Add(model.Entry{ID: uint64(910000 + i), Kind: model.Point, Start: model.Date(2012, 1, 1),
			End: model.Date(2012, 1, 1), Type: model.TypeMeasurement, Source: model.Source(1),
			Value: float64(45 + i*20)})
		if _, err := st.Append(store.AppendBatch{NewHistories: []*model.History{h}}); err != nil {
			t.Fatal(err)
		}
	}

	// Re-materialize at the new generation, then refine: the narrow path
	// must see the appended patients.
	if _, err := e.Materialize(ctx, "base", parent); err != nil {
		t.Fatal(err)
	}
	_, ref, err := e.Refine(ctx, "narrow", narrow)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mode != RefineNarrow || ref.Seed != "base" {
		t.Fatalf("re-materialized refine: %+v, want narrow seeded by \"base\"", ref)
	}
	bits, _, err := e.CohortBits("narrow")
	if err != nil {
		t.Fatal(err)
	}
	want := scanBits(st.Collection(), st, narrow)
	if !bits.Equal(want) {
		t.Fatalf("refine after append diverges from scan: %d vs %d", bits.Count(), want.Count())
	}
	fresh, err := e.Execute(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(fresh) {
		t.Fatal("refine after append diverges from from-scratch Execute")
	}
}

// TestCohortProfileMergeParity: the per-shard partial profiles must
// merge to exactly the sequential single-pass aggregation, at every
// shard count.
func TestCohortProfileMergeParity(t *testing.T) {
	col, st, engines := cohortEngines(t)
	window := model.Period{Start: model.Date(2005, 1, 1), End: model.Date(2015, 1, 1)}
	exprs := []query.Expr{
		query.TrueExpr{},
		query.Has{Pred: query.TypeIs(model.TypeDiagnosis)},
		query.And{query.SexIs(model.SexFemale), query.Has{Pred: query.TypeIs(model.TypeMedication)}},
	}
	for _, q := range exprs {
		bits := scanBits(col, st, q)
		var want stats.CohortProfile
		for i, h := range col.Histories() {
			if bits.Get(i) {
				want.AddHistory(h, window)
			}
		}
		for _, e := range engines {
			got, err := e.Profile(bits, window)
			if err != nil {
				t.Fatalf("shards=%d Profile(%s): %v", e.NumShards(), q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d Profile(%s) merge diverges:\n got  %+v\n want %+v",
					e.NumShards(), q, got, want)
			}
		}
	}
}

// TestExplainSeedAnnotation checks the human-readable mask provenance:
// the explain output names the seeding cohort, its cardinality, and
// whether the mask is applied locally or pushed down.
func TestExplainSeedAnnotation(t *testing.T) {
	_, st, _ := cohortEngines(t)
	e := New(st, Options{Shards: 4, CacheSize: 32})
	parent := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
	if _, err := e.Materialize(context.Background(), "diag", parent); err != nil {
		t.Fatal(err)
	}
	x, err := e.Explain(query.And{parent, query.SexIs(model.SexFemale)})
	if err != nil {
		t.Fatal(err)
	}
	if x.Seed == nil {
		t.Fatal("Explain.Seed == nil for a narrowing refinement of a materialized cohort")
	}
	if x.Seed.Cohort != "diag" || x.Seed.Mode != RefineNarrow || x.Seed.Pushed {
		t.Fatalf("SeedInfo = %+v, want local narrow from \"diag\"", x.Seed)
	}
	if x.Seed.Delta == "" {
		t.Fatal("SeedInfo.Delta empty: the delta fragment must be named")
	}
	out := x.String()
	if !strings.Contains(out, `seed: cohort "diag"`) || !strings.Contains(out, "masked locally") {
		t.Fatalf("explain output missing seed annotation:\n%s", out)
	}

	// An exact match explains as answering from cache.
	x, err = e.Explain(parent)
	if err != nil {
		t.Fatal(err)
	}
	if x.Seed == nil || x.Seed.Mode != RefineExact || x.Seed.Pushed {
		t.Fatalf("exact SeedInfo = %+v", x.Seed)
	}
	if !strings.Contains(x.String(), "refine executes nothing") {
		t.Fatalf("exact explain output missing annotation:\n%s", x.String())
	}
}

// TestCohortValidation: hostile names and opaque expressions are loud
// errors, never saved cohorts.
func TestCohortValidation(t *testing.T) {
	_, st, _ := cohortEngines(t)
	e := New(st, Options{Shards: 2, CacheSize: 0})
	ctx := context.Background()
	ok := query.TrueExpr{}

	bad := []string{"", strings.Repeat("x", 201), "new\nline", "nul\x00byte", "del\x7f"}
	for _, name := range bad {
		if _, err := e.Materialize(ctx, name, ok); err == nil {
			t.Errorf("Materialize(%q) accepted a hostile name", name)
		}
	}

	opaque := query.Has{Pred: query.MatchFunc{Name: "f", Fn: func(*model.Entry) bool { return true }}}
	if _, err := e.Materialize(ctx, "f", opaque); err == nil {
		t.Error("Materialize accepted an opaque expression")
	}
	if _, _, err := e.Refine(ctx, "f", opaque); err == nil {
		t.Error("Refine accepted an opaque expression")
	}
	if _, ok := e.workspaceEntries(); ok {
		t.Error("rejected cohorts leaked into the workspace")
	}

	if _, _, err := e.CohortBits("missing"); err == nil {
		t.Error("CohortBits(missing) must error")
	}
}

// workspaceEntries reports whether the engine's workspace holds any
// entry at the current generation (test-only helper).
func (e *Engine) workspaceEntries() (int, bool) {
	cs := e.Cohorts()
	return len(cs), len(cs) > 0
}
