package engine

import "sort"

// Optimize rewrites a plan into its executable form. One bottom-up pass
// applies, at every node:
//
//   - flatten: And{And{a,b},c} → And{a,b,c}, same for Or
//   - constant folding: All/None absorb or cancel inside And/Or,
//     Not{All}=None, Not{None}=All, Not{Not{x}}=x
//   - dedupe: structurally identical siblings (same canonical key)
//     collapse to one
//   - hoist: scan-free children (index leaves, boolean combinations of
//     them) move ahead of scan-bearing ones, stably, so the executor can
//     mask expensive scans by the already-narrowed candidate set
//   - singleton collapse: And/Or of one child becomes the child
//
// The input plan is not mutated.
func Optimize(p Plan) Plan {
	switch n := p.(type) {
	case And:
		return optimizeNary(n.Children, true)
	case Or:
		return optimizeNary(n.Children, false)
	case Not:
		child := Optimize(n.Child)
		switch c := child.(type) {
		case All:
			return None{}
		case None:
			return All{}
		case Not:
			return c.Child
		}
		return Not{Child: child}
	default:
		return p
	}
}

// optimizeNary rewrites an And (conj=true) or Or (conj=false) node.
func optimizeNary(children []Plan, conj bool) Plan {
	var flat []Plan
	for _, c := range children {
		c = Optimize(c)
		switch cc := c.(type) {
		case And:
			if conj {
				flat = append(flat, cc.Children...)
				continue
			}
		case Or:
			if !conj {
				flat = append(flat, cc.Children...)
				continue
			}
		case All:
			if conj {
				continue // neutral element
			}
			return All{} // absorbing element
		case None:
			if conj {
				return None{} // absorbing element
			}
			continue // neutral element
		}
		flat = append(flat, c)
	}

	// Dedupe structurally identical siblings (idempotence of ∧ / ∨).
	seen := make(map[string]bool, len(flat))
	deduped := flat[:0]
	for _, c := range flat {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		deduped = append(deduped, c)
	}

	switch len(deduped) {
	case 0:
		if conj {
			return All{}
		}
		return None{}
	case 1:
		return deduped[0]
	}

	// Hoist index-answerable children ahead of scan-bearing ones.
	sort.SliceStable(deduped, func(i, j int) bool {
		return !hasScan(deduped[i]) && hasScan(deduped[j])
	})

	if conj {
		return And{Children: deduped}
	}
	return Or{Children: deduped}
}
