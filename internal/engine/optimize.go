package engine

import (
	"sort"

	"pastas/internal/store"
)

// Optimize rewrites a plan into its executable form. One bottom-up pass
// applies, at every node:
//
//   - flatten: And{And{a,b},c} → And{a,b,c}, same for Or
//   - constant folding: All/None absorb or cancel inside And/Or,
//     Not{All}=None, Not{None}=All, Not{Not{x}}=x
//   - dedupe: structurally identical siblings (same canonical key)
//     collapse to one
//   - hoist: scan-free children (index leaves, boolean combinations of
//     them) move ahead of scan-bearing ones, stably, so the executor can
//     mask expensive scans by the already-narrowed candidate set
//   - singleton collapse: And/Or of one child becomes the child
//
// The input plan is not mutated. Execution order within a tier is the
// compile order (the static hoist); OptimizeWithStats replaces that with
// cost-based ordering.
func Optimize(p Plan) Plan { return optimizeNode(p, nil) }

// OptimizeWithStats is Optimize with the static hoist replaced by
// cost-based child ordering: And children run most-selective-cheapest
// first, Or children largest first, both estimated from the store's
// exact index cardinalities (see the cost model in cost.go). Falls back
// to the static ordering when st is nil or the population is empty.
// Reordering never changes plan cache keys: And/Or keys are canonical
// (order-insensitive) by construction.
func OptimizeWithStats(p Plan, st *store.Stats) Plan {
	return optimizeNode(p, newCostModel(st))
}

func optimizeNode(p Plan, m *costModel) Plan {
	switch n := p.(type) {
	case And:
		return optimizeNary(n.Children, true, m)
	case Or:
		return optimizeNary(n.Children, false, m)
	case Not:
		child := optimizeNode(n.Child, m)
		switch c := child.(type) {
		case All:
			return None{}
		case None:
			return All{}
		case Not:
			return c.Child
		}
		return Not{Child: child}
	default:
		return p
	}
}

// optimizeNary rewrites an And (conj=true) or Or (conj=false) node.
func optimizeNary(children []Plan, conj bool, m *costModel) Plan {
	var flat []Plan
	for _, c := range children {
		c = optimizeNode(c, m)
		switch cc := c.(type) {
		case And:
			if conj {
				flat = append(flat, cc.Children...)
				continue
			}
		case Or:
			if !conj {
				flat = append(flat, cc.Children...)
				continue
			}
		case All:
			if conj {
				continue // neutral element
			}
			return All{} // absorbing element
		case None:
			if conj {
				return None{} // absorbing element
			}
			continue // neutral element
		}
		flat = append(flat, c)
	}

	// Dedupe structurally identical siblings (idempotence of ∧ / ∨).
	seen := make(map[string]bool, len(flat))
	deduped := flat[:0]
	for _, c := range flat {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		deduped = append(deduped, c)
	}

	switch len(deduped) {
	case 0:
		if conj {
			return All{}
		}
		return None{}
	case 1:
		return deduped[0]
	}

	if m != nil {
		// Cost-based: most-selective-cheapest-first under And,
		// largest-first under Or, index-answerable children still ahead
		// of scans in both.
		m.order(deduped, conj)
	} else {
		// Static hoist: index-answerable children ahead of scan-bearing
		// ones, compile order within each tier.
		sort.SliceStable(deduped, func(i, j int) bool {
			return !hasScan(deduped[i]) && hasScan(deduped[j])
		})
	}

	if conj {
		return And{Children: deduped}
	}
	return Or{Children: deduped}
}
