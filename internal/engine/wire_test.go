package engine

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"pastas/internal/model"
	"pastas/internal/query"
)

// encodeWire serializes a raw wire node, bypassing planToWire's
// validation — how a hostile peer would craft a payload.
func encodeWire(w wirePlan) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&w)
	return buf.Bytes(), err
}

// TestWireRoundTripFixed covers every canonical node kind explicitly.
func TestWireRoundTripFixed(t *testing.T) {
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	exprs := []query.Expr{
		query.TrueExpr{},
		query.Not{E: query.TrueExpr{}},
		query.Has{Pred: query.MustCode("ICPC2", "T90")},
		query.Has{Pred: query.MustCode("", `E11(\..*)?`), MinCount: 3},
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", `K8.`)}},
		query.Has{Pred: query.AnyOf{query.SourceIs(model.SourceGP), query.KindIs(model.Interval)}},
		query.Has{Pred: query.NotEv{P: query.ValueBetween{Lo: 1.5, Hi: 9.75}}},
		query.Has{Pred: query.InPeriod(window)},
		query.Has{Pred: mustText(t, "infarct.*")},
		query.And{
			query.AgeBetween{Lo: 30, Hi: 70, At: window.Start},
			query.Or{query.SexIs(model.SexFemale), query.Has{Pred: query.TypeIs(model.TypeMedication)}},
		},
		query.Sequence{Steps: []query.Step{
			{Pred: query.MustCode("", "T90")},
			{Pred: query.TypeIs(model.TypeStay), MinGap: 7 * model.Day, MaxGap: 90 * model.Day},
		}},
		query.During{Interval: query.TypeIs(model.TypeStay), Event: query.TypeIs(model.TypeDiagnosis)},
	}
	for _, e := range exprs {
		p, err := Compile(e)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		checkWireRoundTrip(t, p)
		// Optimized plans must round-trip too (that is what a coordinator
		// actually ships).
		checkWireRoundTrip(t, Optimize(p))
	}
}

func mustText(t *testing.T, pattern string) query.EventPred {
	t.Helper()
	tm, err := query.NewTextMatch(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func checkWireRoundTrip(t *testing.T, p Plan) {
	t.Helper()
	data, err := EncodePlan(p)
	if err != nil {
		t.Fatalf("encode %s: %v", p, err)
	}
	got, err := DecodePlan(data)
	if err != nil {
		t.Fatalf("decode %s: %v", p, err)
	}
	if got.Key() != p.Key() {
		t.Fatalf("round trip changed plan:\n was %s\n now %s", p.Key(), got.Key())
	}
}

// TestWireRoundTripRandom drives the codec with the parity generator's
// random expressions — the same population of plans the distributed
// engine ships in the loopback parity test.
func TestWireRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		e := randExpr(r, 1+r.Intn(3))
		p, err := Compile(e)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		checkWireRoundTrip(t, Optimize(p))
	}
}

// TestWireRejectsOpaque: closures cannot cross a process boundary; the
// encoder must say so instead of shipping a plan that silently matches
// nothing.
func TestWireRejectsOpaque(t *testing.T) {
	opaque := query.Has{Pred: query.MatchFunc{
		Fn:   func(e *model.Entry) bool { return e.Value > 10 },
		Name: "high-value",
	}}
	p, err := Compile(opaque)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodePlan(p); err == nil {
		t.Error("opaque plan encoded without error")
	}
	// Opaque anywhere in the tree poisons the whole plan.
	nested, err := Compile(query.And{query.TrueExpr{}, opaque})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodePlan(nested); err == nil {
		t.Error("nested opaque plan encoded without error")
	}
}

// TestWireRejectsHostilePayloads: garbage and lies must error, never
// panic or yield a plan with nil internals.
func TestWireRejectsHostilePayloads(t *testing.T) {
	if _, err := DecodePlan([]byte("not a gob stream")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := DecodePlan(nil); err == nil {
		t.Error("empty payload decoded")
	}
	// A structurally valid wire plan with an invalid regex must be
	// rejected at decode time, not explode at evaluation time.
	bad, err := encodeWire(wirePlan{Kind: wireScan, Expr: &wireExpr{
		Kind: wireExprHas,
		Pred: &wirePred{Kind: wirePredCode, Pattern: "("},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(bad); err == nil {
		t.Error("invalid code pattern decoded")
	}
	bad, err = encodeWire(wirePlan{Kind: "mystery"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(bad); err == nil {
		t.Error("unknown node kind decoded")
	}
}
