package engine

// Failure-semantics policy for coordinating engines. Strict is the
// historical contract — any unreachable shard fails the whole query, a
// partial cohort is never returned. Degraded trades completeness for
// availability: the answer is computed over the reachable shards and the
// unreachable ones are named explicitly in a QueryStatus, so a caller
// can render "cohort over 14 of 16 shards" instead of an error page
// while the hospital's aggregation backends flap. Degradation only ever
// applies to transport-level unavailability (IsUnavailable); semantic
// errors — a wrong-sized mask, an opaque plan, a corrupt reply — stay
// loud under either policy, because they signal bugs, not outages.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pastas/internal/store"
)

// Policy selects the coordinator's behavior when a shard is unreachable.
type Policy int

const (
	// PolicyStrict fails any operation that cannot reach every shard it
	// needs. The default.
	PolicyStrict Policy = iota
	// PolicyDegraded answers over the reachable shards and reports the
	// unreachable ones in the operation's QueryStatus.
	PolicyDegraded
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrUnavailable marks transport-level failures: dial errors, call
// timeouts, connection resets, exhausted failover attempts. Errors
// wrapping it are safe to retry on another replica of the same shard
// (every ShardBackend operation is read-only and idempotent), and they
// are the only errors PolicyDegraded absorbs.
var ErrUnavailable = errors.New("backend unavailable")

// ErrDraining is the distinct refusal a shard server answers with once
// Shutdown has begun: the server is alive but will not take new work.
// A replica set treats it exactly like unavailability — fail over, do
// not error — so rolling restarts are invisible to queries.
var ErrDraining = errors.New("shard server draining")

// drainingMarker is the substring the server embeds in its refusal;
// net/rpc flattens server-side errors to strings, so the client
// re-classifies by content.
const drainingMarker = "server draining"

// IsUnavailable reports whether err is a transport-level failure (or a
// drain refusal) that failover and degradation may absorb.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrDraining)
}

// ShardError attributes a fan-out failure to the shard it came from, so
// API layers can name the failing shard structurally (an error envelope's
// shards_missing list) instead of parsing error text.
type ShardError struct {
	Shard int
	Err   error
}

// Error implements error; the message is the wrapped error's — the
// attribution rides alongside, it does not reformat.
func (e *ShardError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// FailedShards collects every shard id attributed anywhere in err's
// wrap chain, sorted ascending and deduplicated. Nil when no ShardError
// is present — a local failure, not an outage.
func FailedShards(err error) []int {
	seen := map[int]bool{}
	var out []int
	for {
		var se *ShardError
		if !errors.As(err, &se) {
			break
		}
		if !seen[se.Shard] {
			seen[se.Shard] = true
			out = append(out, se.Shard)
		}
		err = se.Err
	}
	sort.Ints(out)
	return out
}

// QueryStatus reports the completeness of one coordinator operation.
// Under PolicyStrict it is always complete (incomplete answers become
// errors before they reach a caller); under PolicyDegraded it names
// exactly the shards whose backends were unreachable.
type QueryStatus struct {
	// MissingShards are the shard ids that did not contribute to the
	// answer, sorted ascending. Empty means the answer is complete.
	MissingShards []int
	// MissingPatients is the total population of the missing shards —
	// the upper bound on how many cohort members the answer can lack.
	MissingPatients int
}

// Complete reports whether every shard contributed.
func (s QueryStatus) Complete() bool { return len(s.MissingShards) == 0 }

// IncompleteMask renders the missing shards as a bitmask over shard ids
// (bit i set ⇔ shard i did not answer), sized to the topology's shard
// count. Shard ids outside [0, shards) are ignored.
func (s QueryStatus) IncompleteMask(shards int) *store.Bitset {
	mask := store.NewBitset(shards)
	for _, id := range s.MissingShards {
		if id >= 0 && id < shards {
			mask.Set(id)
		}
	}
	return mask
}

// String renders "complete" or "incomplete (shards 1,3 unreachable; ≤N
// patients missing)".
func (s QueryStatus) String() string {
	if s.Complete() {
		return "complete"
	}
	parts := make([]string, len(s.MissingShards))
	for i, id := range s.MissingShards {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("incomplete (shards %s unreachable; ≤%d patients missing)",
		strings.Join(parts, ","), s.MissingPatients)
}

// statusFromMissing builds a QueryStatus from the indexes of the failed
// backends, translating them to shard ids and tallying the population
// they cover.
func (e *Engine) statusFromMissing(t *topo, failed []int) QueryStatus {
	if len(failed) == 0 {
		return QueryStatus{}
	}
	st := QueryStatus{MissingShards: make([]int, 0, len(failed))}
	for _, i := range failed {
		m := t.backends[i].Meta()
		st.MissingShards = append(st.MissingShards, m.Shard)
		st.MissingPatients += m.Patients
	}
	sort.Ints(st.MissingShards)
	return st
}
