package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// costStore hand-builds a 20-patient collection with known cardinalities:
//   - code A01 (ICPC2, diagnosis): patients 1..4   (card 4, 2 entries each)
//   - code B02 (ICPC2, diagnosis): patients 1..10  (card 10)
//   - code C03 (ICD10, hospital):  patient  1      (card 1)
//   - type measurement:            patients 11..20 (card 10)
//
// Every patient also has 3 code-less GP contact entries.
func costStore(t testing.TB) *store.Store {
	t.Helper()
	base := model.Date(2010, 1, 1)
	hs := make([]*model.History, 20)
	for i := range hs {
		id := i + 1
		h := model.NewHistory(model.Patient{ID: model.PatientID(id), Birth: model.Date(1950, 1, 1)})
		eid := uint64(id * 100)
		add := func(typ model.Type, src model.Source, code model.Code) {
			eid++
			h.Add(model.Entry{ID: eid, Kind: model.Point, Start: base.AddDays(int(eid % 300)),
				End: base.AddDays(int(eid % 300)), Type: typ, Source: src, Code: code})
		}
		for j := 0; j < 3; j++ {
			add(model.TypeContact, model.SourceGP, model.Code{})
		}
		if id <= 4 {
			add(model.TypeDiagnosis, model.SourceGP, model.Code{System: "ICPC2", Value: "A01"})
			add(model.TypeDiagnosis, model.SourceGP, model.Code{System: "ICPC2", Value: "A01"})
		}
		if id <= 10 {
			add(model.TypeDiagnosis, model.SourceGP, model.Code{System: "ICPC2", Value: "B02"})
		}
		if id == 1 {
			add(model.TypeDiagnosis, model.SourceHospital, model.Code{System: "ICD10", Value: "C03"})
		}
		if id > 10 {
			add(model.TypeMeasurement, model.SourceGP, model.Code{})
		}
		hs[i] = h
	}
	return store.New(model.MustCollection(hs...))
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestEstimateSelectivities pins the cost model's row estimates on the
// hand-built collection: index leaves are exact, boolean nodes compose
// under independence.
func TestEstimateSelectivities(t *testing.T) {
	st := costStore(t)
	m := newCostModel(st.Stats())
	if m == nil {
		t.Fatal("no cost model over a 20-patient store")
	}

	est := func(e query.Expr) Estimate {
		t.Helper()
		p, err := Compile(e)
		if err != nil {
			t.Fatal(err)
		}
		return m.estimate(Optimize(p))
	}

	codeA := query.Has{Pred: query.MustCode("ICPC2", "A01")}
	codeB := query.Has{Pred: query.MustCode("ICPC2", "B02")}
	meas := query.Has{Pred: query.TypeIs(model.TypeMeasurement)}

	if got := est(codeA).Rows; !approx(got, 4) {
		t.Errorf("rows(A01) = %f, want 4 (exact cardinality)", got)
	}
	if got := est(query.Has{Pred: query.MustCode("ICPC2", `A01|B02`)}).Rows; !approx(got, 14) {
		t.Errorf("rows(A01|B02) = %f, want 14 (union bound)", got)
	}
	if got := est(query.Has{Pred: query.MustCode("", `.*`)}).Rows; !approx(got, 15) {
		t.Errorf("rows(.*) = %f, want 15 (capped at… sum 4+10+1)", got)
	}
	if got := est(meas).Rows; !approx(got, 10) {
		t.Errorf("rows(type=measurement) = %f, want 10", got)
	}
	if got := est(query.Has{Pred: query.SourceIs(model.SourceHospital)}).Rows; !approx(got, 1) {
		t.Errorf("rows(source=hospital) = %f, want 1", got)
	}
	// Independence: And multiplies selectivities, Or complements.
	if got := est(query.And{codeA, meas}).Rows; !approx(got, 20*(4.0/20)*(10.0/20)) {
		t.Errorf("rows(A01 ∧ meas) = %f, want 1 (independence)", got)
	}
	if got := est(query.Or{codeA, meas}).Rows; !approx(got, 20*(1-(1-4.0/20)*(1-10.0/20))) {
		t.Errorf("rows(A01 ∨ meas) = %f, want 12 (independence)", got)
	}
	if got := est(query.Not{E: codeB}).Rows; !approx(got, 10) {
		t.Errorf("rows(¬B02) = %f, want 10", got)
	}
	// MinCount scans keep the ≥1-entry cardinality as an upper bound.
	counted := query.Has{Pred: query.MustCode("ICPC2", "A01"), MinCount: 2}
	if got := est(counted).Rows; !approx(got, 4) {
		t.Errorf("rows(A01 ≥2) = %f, want ≤1-entry bound 4", got)
	}
	// The bounded scan must be estimated far cheaper than an unbounded one.
	opaque := query.Has{Pred: query.KindIs(model.Interval)}
	if bc, oc := est(counted).Cost, est(opaque).Cost; bc >= oc/2 {
		t.Errorf("bounded scan cost %f not clearly below unbounded %f", bc, oc)
	}
	// Demographics: uniform priors.
	if got := est(query.SexIs(model.SexFemale)).Rows; !approx(got, 10) {
		t.Errorf("rows(sex=female) = %f, want 10", got)
	}
}

// TestOptimizeWithStatsOrdersAnd: And children come out most-selective
// first (scan-free tier), with scan-bearing children after, themselves
// selectivity-ordered — not in compile order.
func TestOptimizeWithStatsOrdersAnd(t *testing.T) {
	st := costStore(t)
	// Compile order: common index, common scan, rare scan, rare index.
	e := query.And{
		query.Has{Pred: query.MustCode("ICPC2", "B02")},              // index, card 10
		query.Has{Pred: query.MustCode("ICPC2", "B02"), MinCount: 2}, // scan, bound 10
		query.Has{Pred: query.MustCode("ICPC2", "A01"), MinCount: 2}, // scan, bound 4
		query.Has{Pred: query.MustCode("ICD10", "C03")},              // index, card 1
	}
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := OptimizeWithStats(p, st.Stats()).(And)
	if !ok || len(and.Children) != 4 {
		t.Fatalf("got %v", OptimizeWithStats(p, st.Stats()))
	}
	order := make([]string, 4)
	for i, c := range and.Children {
		order[i] = c.String()
	}
	// Tier 1: index leaves, most selective (C03, card 1) first.
	if !strings.Contains(order[0], "C03") || !strings.Contains(order[1], "B02") || hasScan(and.Children[0]) || hasScan(and.Children[1]) {
		t.Errorf("index tier misordered: %v", order)
	}
	// Tier 2: scans, most selective (A01 bound 4) first.
	if !strings.Contains(order[2], "A01") || !strings.Contains(order[3], "B02") || !hasScan(and.Children[2]) {
		t.Errorf("scan tier misordered: %v", order)
	}
}

// TestOptimizeWithStatsOrdersOrLargestFirst: Or children come out
// largest-first so later scans skip the already-covered majority.
func TestOptimizeWithStatsOrdersOrLargestFirst(t *testing.T) {
	st := costStore(t)
	e := query.Or{
		query.Has{Pred: query.MustCode("ICD10", "C03")},              // card 1
		query.Has{Pred: query.MustCode("ICPC2", "B02")},              // card 10
		query.Has{Pred: query.MustCode("ICPC2", "A01"), MinCount: 2}, // scan
		query.Has{Pred: query.MustCode("ICPC2", "A01")},              // card 4
	}
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := OptimizeWithStats(p, st.Stats()).(Or)
	if !ok || len(or.Children) != 4 {
		t.Fatalf("got %v", OptimizeWithStats(p, st.Stats()))
	}
	if !strings.Contains(or.Children[0].String(), "B02") ||
		!strings.Contains(or.Children[1].String(), "A01") ||
		!strings.Contains(or.Children[2].String(), "C03") {
		t.Errorf("Or not largest-first: %v", or)
	}
	if !hasScan(or.Children[3]) {
		t.Errorf("scan not last under Or: %v", or)
	}
}

// TestOptimizeWithStatsKeepsCanonicalKeys: cost-based reordering must not
// change the canonical cache key (And/Or keys are order-insensitive).
func TestOptimizeWithStatsKeepsCanonicalKeys(t *testing.T) {
	st := costStore(t)
	e := query.And{
		query.Has{Pred: query.MustCode("ICPC2", "B02"), MinCount: 2},
		query.Has{Pred: query.MustCode("ICD10", "C03")},
	}
	p1, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := Optimize(p1).Key(), OptimizeWithStats(p2, st.Stats()).Key(); a != b {
		t.Errorf("reordering changed the cache key:\n static %s\n cost   %s", a, b)
	}
}

// TestEmptyStoreFallsBackToStatic: no population means no cost model; the
// engine must keep working on the static path.
func TestEmptyStoreFallsBackToStatic(t *testing.T) {
	if m := newCostModel(store.New(model.MustCollection()).Stats()); m != nil {
		t.Error("cost model over an empty store")
	}
	eng := New(store.New(model.MustCollection()), Options{Shards: 4})
	b, err := eng.Execute(query.Has{Pred: query.MustCode("", "T90")})
	if err != nil || b.Count() != 0 {
		t.Errorf("empty store execute = %v, %v", b, err)
	}
}

// TestExplainAnnotatesPlan: the annotated plan mirrors the executed tree
// and carries non-zero estimates in execution order.
func TestExplainAnnotatesPlan(t *testing.T) {
	eng := New(costStore(t), Options{Shards: 2, CacheSize: 8})
	e := query.And{
		query.Has{Pred: query.MustCode("ICPC2", "B02"), MinCount: 2},
		query.Has{Pred: query.MustCode("ICD10", "C03")},
	}
	ex, err := eng.Explain(e)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Patients != 20 {
		t.Errorf("patients = %d", ex.Patients)
	}
	if ex.Root.Label != "and" || len(ex.Root.Children) != 2 {
		t.Fatalf("root = %+v", ex.Root)
	}
	// Execution order: the selective index leaf (C03) drives.
	if !strings.Contains(ex.Root.Children[0].Label, "C03") {
		t.Errorf("explain not in execution order: %+v", ex.Root.Children)
	}
	if ex.Root.Est.Rows <= 0 || ex.Root.Est.Cost <= 0 {
		t.Errorf("missing estimates: %+v", ex.Root.Est)
	}
	if ex.Root.Children[0].Est.Rows != 1 {
		t.Errorf("C03 leaf rows = %f, want exact 1", ex.Root.Children[0].Est.Rows)
	}
	s := ex.String()
	if !strings.Contains(s, "est_rows") || !strings.Contains(s, "  index:") {
		t.Errorf("rendering missing annotations or indentation:\n%s", s)
	}
	// The invalid-regex path still errors cleanly.
	if _, err := eng.Explain(query.Has{Pred: &query.Code{System: "ICPC2", Pattern: "("}}); err == nil {
		t.Error("Explain accepted a bad pattern")
	}
}

// TestShardStatsAccumulate: scan fan-out records per-shard timings.
func TestShardStatsAccumulate(t *testing.T) {
	eng := New(costStore(t), Options{Shards: 4, Workers: 2, CacheSize: 0})
	if _, err := eng.Execute(query.Has{Pred: query.KindIs(model.Point)}); err != nil {
		t.Fatal(err)
	}
	stats := eng.ShardStats()
	if len(stats) != eng.NumShards() {
		t.Fatalf("stats for %d of %d shards", len(stats), eng.NumShards())
	}
	total := 0
	queries := uint64(0)
	for i, s := range stats {
		if s.Shard != i {
			t.Errorf("shard %d labeled %d", i, s.Shard)
		}
		total += s.Patients
		queries += s.Queries
	}
	if total != 20 {
		t.Errorf("shards cover %d of 20 patients", total)
	}
	if queries == 0 {
		t.Error("no shard recorded the scan")
	}
}

// TestCostOptimizedParity is the acceptance-criteria property test:
// cost-reordered plans return bitsets identical to the reference
// interpreter (and the static plans) over random expressions, on every
// shard-count engine.
func TestCostOptimizedParity(t *testing.T) {
	col, st, engines := parityEngines(t)
	_ = col
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 1+r.Intn(3))
		p, err := Compile(e)
		if err != nil {
			t.Fatalf("Compile(%s): %v", e, err)
			return false
		}
		want, err := query.EvalIndexed(st, e)
		if err != nil {
			t.Fatalf("EvalIndexed(%s): %v", e, err)
			return false
		}
		costPlan := OptimizeWithStats(p, st.Stats())
		for _, eng := range engines {
			got, err := eng.ExecutePlan(costPlan)
			if err != nil {
				t.Fatalf("ExecutePlan(%s) shards=%d: %v", e, eng.NumShards(), err)
				return false
			}
			if !got.Equal(want) {
				t.Fatalf("cost plan diverges for %s (shards=%d):\n plan %s\n got %d want %d",
					e, eng.NumShards(), costPlan, got.Count(), want.Count())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
