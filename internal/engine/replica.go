package engine

// ReplicaBackend: one shard served by N interchangeable backends. Every
// ShardBackend operation is read-only and idempotent, which makes the
// whole replication story client-side and simple — no leases, no
// quorums, just "ask a healthy replica, and if it fails mid-query, ask
// another". Selection is power-of-two-choices on an EWMA of observed
// latency (two random healthy replicas, take the faster), which spreads
// read load without a coordinator and routes around a slow-but-alive
// replica long before it fails outright. Failures mark the replica down
// passively; an active health checker (health.go) probes it back into
// rotation. Failed attempts retry on other replicas under jittered
// exponential backoff, bounded by the caller's context deadline — the
// coordinator's query budget — so failover absorbs a killed replica
// without ever pinning a worker.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pastas/internal/model"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// ReplicaOptions tunes a replica set. The zero value uses the defaults.
type ReplicaOptions struct {
	// ProbeInterval is the active health-check period. 0 means
	// DefaultProbeInterval; negative disables active probing (tests).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one liveness probe. 0 means DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// MaxAttempts bounds how many replicas one call may try (counting
	// the first). 0 means twice the replica count — every replica gets a
	// second chance after a full backoff round before the call gives up.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between failover attempts. 0 means DefaultBackoffBase/Max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Defaults for ReplicaOptions.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultProbeTimeout  = 2 * time.Second
	DefaultBackoffBase   = 5 * time.Millisecond
	DefaultBackoffMax    = 250 * time.Millisecond
)

func (o ReplicaOptions) probeInterval() time.Duration {
	if o.ProbeInterval == 0 {
		return DefaultProbeInterval
	}
	return o.ProbeInterval
}

func (o ReplicaOptions) probeTimeout() time.Duration {
	if o.ProbeTimeout <= 0 {
		return DefaultProbeTimeout
	}
	return o.ProbeTimeout
}

func (o ReplicaOptions) maxAttempts(replicas int) int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 2 * replicas
}

func (o ReplicaOptions) backoffBase() time.Duration {
	if o.BackoffBase <= 0 {
		return DefaultBackoffBase
	}
	return o.BackoffBase
}

func (o ReplicaOptions) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return DefaultBackoffMax
	}
	return o.BackoffMax
}

// ReplicaBackend implements ShardBackend over a set of same-shard
// replicas with health-checked failover and latency-aware read
// balancing.
type ReplicaBackend struct {
	meta     ShardMeta
	replicas []*replicaState
	opts     ReplicaOptions
	rr       atomic.Uint64 // desperation round-robin when nothing is healthy

	stopOnce sync.Once
	stop     chan struct{}
}

// NewReplicaBackend wraps the given same-shard backends as one replica
// set. Every member must advertise an identical shard identity — id,
// ordinal offset, population and entry count — because the set answers
// as one shard; a mismatch means the members load different snapshots
// (or the wrong shard) and is rejected here, at assembly time, with an
// error naming both sides. Members start healthy; the active health
// checker begins probing immediately.
func NewReplicaBackend(replicas []ShardBackend, opts ReplicaOptions) (*ReplicaBackend, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("engine: replica set needs at least one backend")
	}
	ref := replicas[0].Meta()
	states := make([]*replicaState, len(replicas))
	names := make([]string, len(replicas))
	for i, b := range replicas {
		m := b.Meta()
		if m.Shard != ref.Shard || m.Offset != ref.Offset || m.Patients != ref.Patients || m.Entries != ref.Entries {
			return nil, fmt.Errorf(
				"engine: replica set mismatch: %s advertises shard %d [%d, %d) with %d entries, %s advertises shard %d [%d, %d) with %d entries (different snapshots or shard assignments?)",
				replicas[0].Meta().Backend, ref.Shard, ref.Offset, ref.Offset+ref.Patients, ref.Entries,
				m.Backend, m.Shard, m.Offset, m.Offset+m.Patients, m.Entries)
		}
		states[i] = &replicaState{backend: b, name: m.Backend}
		states[i].healthy.Store(true)
		names[i] = m.Backend
	}
	meta := ref
	meta.Backend = fmt.Sprintf("replicas(%s)", strings.Join(names, " | "))
	rb := &ReplicaBackend{meta: meta, replicas: states, opts: opts, stop: make(chan struct{})}
	if opts.ProbeInterval >= 0 {
		go healthLoop(rb.stop, opts.probeInterval(), opts.probeTimeout(), states)
	}
	return rb, nil
}

// Meta implements ShardBackend; the label names every member.
func (rb *ReplicaBackend) Meta() ShardMeta { return rb.meta }

// Health snapshots every replica's state, healthy-or-not, in member
// order — the per-shard block behind Engine.Health.
func (rb *ReplicaBackend) Health() []ReplicaHealth {
	out := make([]ReplicaHealth, len(rb.replicas))
	for i, r := range rb.replicas {
		out[i] = r.snapshot()
	}
	return out
}

// Healthy reports whether any replica is currently in rotation.
func (rb *ReplicaBackend) Healthy() bool {
	for _, r := range rb.replicas {
		if r.healthy.Load() {
			return true
		}
	}
	return false
}

// pick selects the replica for the next attempt: power-of-two-choices
// by latency EWMA over the healthy members not yet tried during this
// call. With no healthy untried member it falls back to any untried one
// (a killed-and-restarted replica may be back before the prober
// notices), and with everything tried it round-robins the whole set —
// the caller's attempt budget, not pick, decides when to give up.
func (rb *ReplicaBackend) pick(tried []bool) *replicaState {
	var healthy, untried []*replicaState
	for i, r := range rb.replicas {
		if tried[i] {
			continue
		}
		untried = append(untried, r)
		if r.healthy.Load() {
			healthy = append(healthy, r)
		}
	}
	pool := healthy
	if len(pool) == 0 {
		pool = untried
	}
	if len(pool) == 0 {
		return rb.replicas[rb.rr.Add(1)%uint64(len(rb.replicas))]
	}
	if len(pool) == 1 {
		return pool[0]
	}
	a, b := rand.IntN(len(pool)), rand.IntN(len(pool)-1)
	if b >= a {
		b++
	}
	if pool[b].ewma() < pool[a].ewma() {
		return pool[b]
	}
	return pool[a]
}

// backoff sleeps the jittered exponential delay for the given failover
// round (full jitter: uniform in (0, min(base·2^round, max)]), or
// returns the context's error if the deadline lands first.
func (rb *ReplicaBackend) backoff(ctx context.Context, round int) error {
	d := rb.opts.backoffBase() << round
	if max := rb.opts.backoffMax(); d > max || d <= 0 {
		d = max
	}
	d = time.Duration(1 + rand.Int64N(int64(d)))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs one idempotent operation with failover: try a replica, and on
// an unavailability error mark it down, back off (jittered, bounded by
// the context) and try another. Deterministic errors — a semantic
// refusal the next replica would repeat — return immediately without
// burning attempts or marking anyone down.
func (rb *ReplicaBackend) do(ctx context.Context, fn func(ctx context.Context, b ShardBackend) error) error {
	tried := make([]bool, len(rb.replicas))
	attempts := rb.opts.maxAttempts(len(rb.replicas))
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			break
		}
		r := rb.pick(tried)
		for i, s := range rb.replicas {
			if s == r {
				tried[i] = true
			}
		}
		t0 := time.Now()
		err := fn(ctx, r.backend)
		if err == nil {
			r.observe(time.Since(t0))
			return nil
		}
		if !IsUnavailable(err) {
			return err // deterministic: every replica would answer the same
		}
		r.markFailed()
		lastErr = err
		// A full round has been tried when every replica is marked; give
		// the set a fresh chance (the restart case) after backing off.
		allTried := true
		for _, t := range tried {
			allTried = allTried && t
		}
		if allTried {
			tried = make([]bool, len(rb.replicas))
		}
		if attempt < attempts-1 {
			if err := rb.backoff(ctx, attempt); err != nil {
				break
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("engine: shard %d: %w: %w", rb.meta.Shard, ErrUnavailable, ctx.Err())
	}
	return fmt.Errorf("engine: shard %d: all %d replicas failed: %w", rb.meta.Shard, len(rb.replicas), lastErr)
}

// Stats implements ShardBackend.
func (rb *ReplicaBackend) Stats(ctx context.Context) (*store.Stats, error) {
	var out *store.Stats
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.Stats(ctx)
		return err
	})
	return out, err
}

// EvalPlan implements ShardBackend; a replica dying mid-query fails over
// transparently because evaluation is pure.
func (rb *ReplicaBackend) EvalPlan(ctx context.Context, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	var out *store.Bitset
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.EvalPlan(ctx, p, mask)
		return err
	})
	return out, err
}

// IDsOf implements ShardBackend.
func (rb *ReplicaBackend) IDsOf(ctx context.Context, bits *store.Bitset) ([]model.PatientID, error) {
	var out []model.PatientID
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.IDsOf(ctx, bits)
		return err
	})
	return out, err
}

// FetchHistories implements ShardBackend.
func (rb *ReplicaBackend) FetchHistories(ctx context.Context, ordinals []int) ([]*model.History, error) {
	var out []*model.History
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.FetchHistories(ctx, ordinals)
		return err
	})
	return out, err
}

// LocateID implements ShardBackend.
func (rb *ReplicaBackend) LocateID(ctx context.Context, id model.PatientID) (int, bool, error) {
	var (
		ordinal int
		found   bool
	)
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		ordinal, found, err = b.LocateID(ctx, id)
		return err
	})
	return ordinal, found, err
}

// Indicators implements ShardBackend.
func (rb *ReplicaBackend) Indicators(ctx context.Context, mask *store.Bitset, window model.Period) (stats.IndicatorCounts, error) {
	var out stats.IndicatorCounts
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.Indicators(ctx, mask, window)
		return err
	})
	return out, err
}

// Profile implements ShardBackend.
func (rb *ReplicaBackend) Profile(ctx context.Context, mask *store.Bitset, window model.Period) (stats.CohortProfile, error) {
	var out stats.CohortProfile
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.Profile(ctx, mask, window)
		return err
	})
	return out, err
}

// Analyze implements ShardBackend. A map step is read-only and
// idempotent like every other backend op, so retrying it on another
// replica after a transport failure is safe.
func (rb *ReplicaBackend) Analyze(ctx context.Context, args AnalyzeArgs) (Partial, error) {
	var out Partial
	err := rb.do(ctx, func(ctx context.Context, b ShardBackend) error {
		var err error
		out, err = b.Analyze(ctx, args)
		return err
	})
	return out, err
}

// Probe implements Prober: the set is alive if any member answers.
func (rb *ReplicaBackend) Probe(ctx context.Context) error {
	var lastErr error
	for _, r := range rb.replicas {
		if err := r.probe(ctx); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// Close implements ShardBackend: stops the health checker and closes
// every member, joining their errors.
func (rb *ReplicaBackend) Close() error {
	rb.stopOnce.Do(func() { close(rb.stop) })
	var errs []error
	for _, r := range rb.replicas {
		if err := r.backend.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("engine: closing replica set for shard %d: %v", rb.meta.Shard, errs)
}
