// Package engine is the query planner/executor behind interactive cohort
// identification. It compiles a query.Expr into a typed plan tree, runs
// rewrite passes over it (flattening, constant folding, hoisting
// index-answerable leaves ahead of scan-only predicates, deduplication),
// and executes the plan against a sharded store with worker-pool fan-out
// and an LRU bitset cache keyed by canonicalized sub-plans — so the
// paper's filter/zoom refinement loop ("all content ... pre-loaded to
// speed up drawing") repeatedly hits cached sub-results instead of
// re-scanning 168k histories.
//
// The legacy single-store interpreter (query.EvalIndexed) is retained as
// the reference implementation; the parity tests in this package hold the
// engine byte-identical to both it and the plain scan evaluator.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/terminology"
)

// Plan is a node of the compiled query plan.
//
// Adding a node kind means extending every evaluator and codec switch in
// step: Engine.eval and Engine.evalMasked (engine.go), evalOnView
// (backend.go), planToWire/planFromWire (wire.go), and the cost model
// (cost.go). Each switch fails loudly on an unknown node, so a missed
// site surfaces as an execution error, not a wrong cohort.
type Plan interface {
	// Key is the canonical cache key: structurally equivalent plans share
	// keys (And/Or keys are order-insensitive, since execution order is an
	// optimizer choice, not a semantic one).
	Key() string
	// String renders the plan in execution order, for EXPLAIN-style output.
	String() string
}

// All matches every patient (the compiled form of query.TrueExpr).
type All struct{}

func (All) Key() string    { return "*" }
func (All) String() string { return "all" }

// None matches no patient (constant-folded Not{All}).
type None struct{}

func (None) Key() string    { return "∅" }
func (None) String() string { return "none" }

// IndexOp selects which inverted index an IndexScan consults.
type IndexOp int

const (
	// OpCode answers Has(code~pattern) from the code index.
	OpCode IndexOp = iota
	// OpType answers Has(type=t) from the type index.
	OpType
	// OpSource answers Has(source=s) from the source index.
	OpSource
)

// IndexScan is a leaf answered entirely from each shard's inverted
// indexes — no history is visited.
type IndexScan struct {
	Op IndexOp
	// Systems restricts an OpCode lookup to these code systems; empty
	// means any system.
	Systems []string
	Pattern string
	Type    model.Type
	Source  model.Source
}

func (p IndexScan) Key() string { return p.String() }

func (p IndexScan) String() string {
	switch p.Op {
	case OpType:
		return "index:type=" + p.Type.String()
	case OpSource:
		return "index:source=" + p.Source.String()
	default:
		if len(p.Systems) == 0 {
			return fmt.Sprintf("index:code~%q", p.Pattern)
		}
		return fmt.Sprintf("index:%s~%q", strings.Join(p.Systems, "|"), p.Pattern)
	}
}

// Scan is the fallback leaf: evaluate the wrapped expression against every
// candidate history. Under And/Or the executor narrows the candidates to
// the patients still in play, so a scan behind a selective index leaf
// touches a fraction of the population.
type Scan struct {
	Expr query.Expr
	// opaqueID is nonzero when the expression contains predicates whose
	// String() does not canonically identify them (MatchFunc closures,
	// or expression/predicate types this package does not know). It
	// makes the key unique per compilation, so neither the plan cache
	// nor the optimizer's sibling dedupe can ever conflate two distinct
	// scans that merely render alike. Build Scan leaves through Compile
	// to get this classification.
	opaqueID uint64
}

func (p Scan) Key() string {
	if p.opaqueID != 0 {
		return fmt.Sprintf("scan#%d{%s}", p.opaqueID, p.Expr.String())
	}
	return "scan{" + p.Expr.String() + "}"
}
func (p Scan) String() string { return p.Key() }

var opaqueSeq atomic.Uint64

func newScan(e query.Expr) Scan {
	s := Scan{Expr: e}
	if !canonicalExpr(e) {
		s.opaqueID = opaqueSeq.Add(1)
	}
	return s
}

// And intersects its children; execution evaluates them left to right and
// masks scan-bearing children by the accumulated candidates.
type And struct{ Children []Plan }

func (p And) Key() string    { return "and(" + joinKeys(p.Children, true) + ")" }
func (p And) String() string { return "and(" + joinKeys(p.Children, false) + ")" }

// Or unions its children; scan-bearing children only scan patients not
// already known to match.
type Or struct{ Children []Plan }

func (p Or) Key() string    { return "or(" + joinKeys(p.Children, true) + ")" }
func (p Or) String() string { return "or(" + joinKeys(p.Children, false) + ")" }

// Not complements its child within the store's population.
type Not struct{ Child Plan }

func (p Not) Key() string    { return "not(" + p.Child.Key() + ")" }
func (p Not) String() string { return "not(" + p.Child.String() + ")" }

func joinKeys(ps []Plan, canonical bool) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		if canonical {
			parts[i] = p.Key()
		} else {
			parts[i] = p.String()
		}
	}
	if canonical {
		sort.Strings(parts)
	}
	return strings.Join(parts, ",")
}

// hasScan reports whether the subtree contains a Scan leaf; the optimizer
// hoists scan-free subtrees ahead of scan-bearing ones and the executor
// masks the latter.
func hasScan(p Plan) bool {
	switch n := p.(type) {
	case Scan:
		return true
	case Not:
		return hasScan(n.Child)
	case And:
		for _, c := range n.Children {
			if hasScan(c) {
				return true
			}
		}
	case Or:
		for _, c := range n.Children {
			if hasScan(c) {
				return true
			}
		}
	}
	return false
}

// Compile lowers a query expression into an unoptimized plan tree. The
// boolean skeleton maps 1:1; Has leaves become IndexScans when the
// inverted indexes answer them exactly (same classification as the legacy
// query.EvalIndexed), everything else becomes a Scan fallback. Code
// patterns are validated here so execution cannot fail on a bad regex.
func Compile(e query.Expr) (Plan, error) {
	switch q := e.(type) {
	case query.TrueExpr:
		return All{}, nil
	case query.And:
		children, err := compileAll([]query.Expr(q))
		if err != nil {
			return nil, err
		}
		return And{Children: children}, nil
	case query.Or:
		children, err := compileAll([]query.Expr(q))
		if err != nil {
			return nil, err
		}
		return Or{Children: children}, nil
	case query.Not:
		child, err := Compile(q.E)
		if err != nil {
			return nil, err
		}
		return Not{Child: child}, nil
	case query.Has:
		if p, ok, err := indexable(q); err != nil {
			return nil, err
		} else if ok {
			return p, nil
		}
	}
	return newScan(e), nil
}

// canonicalExpr reports whether an expression's String() identifies it
// structurally: true only for the expression and predicate types this
// package knows render injectively. MatchFunc (a closure with a free-text
// name) and unknown user-defined types are opaque.
func canonicalExpr(e query.Expr) bool {
	switch q := e.(type) {
	case query.TrueExpr, query.AgeBetween, query.SexIs:
		return true
	case query.And:
		for _, c := range q {
			if !canonicalExpr(c) {
				return false
			}
		}
		return true
	case query.Or:
		for _, c := range q {
			if !canonicalExpr(c) {
				return false
			}
		}
		return true
	case query.Not:
		return canonicalExpr(q.E)
	case query.Has:
		return canonicalPred(q.Pred)
	case query.During:
		return canonicalPred(q.Interval) && canonicalPred(q.Event)
	case query.Sequence:
		for _, st := range q.Steps {
			if !canonicalPred(st.Pred) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func canonicalPred(p query.EventPred) bool {
	switch q := p.(type) {
	case *query.Code, query.TypeIs, query.SourceIs, query.KindIs,
		query.ValueBetween, query.InPeriod, *query.TextMatch:
		return true
	case query.AllOf:
		for _, c := range q {
			if !canonicalPred(c) {
				return false
			}
		}
		return true
	case query.AnyOf:
		for _, c := range q {
			if !canonicalPred(c) {
				return false
			}
		}
		return true
	case query.NotEv:
		return canonicalPred(q.P)
	default: // MatchFunc and anything user-defined
		return false
	}
}

// cacheable reports whether a plan's key identifies it across
// compilations; opaque scans are executed fresh every time.
func cacheable(p Plan) bool {
	switch n := p.(type) {
	case Scan:
		return n.opaqueID == 0
	case Not:
		return cacheable(n.Child)
	case And:
		for _, c := range n.Children {
			if !cacheable(c) {
				return false
			}
		}
		return true
	case Or:
		for _, c := range n.Children {
			if !cacheable(c) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

func compileAll(es []query.Expr) ([]Plan, error) {
	out := make([]Plan, len(es))
	for i, e := range es {
		p, err := Compile(e)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// indexable lowers a Has leaf onto the inverted indexes via the shared
// query.ClassifyHas classification (the same one the legacy interpreter
// uses, so engine and reference can never drift), validating code
// patterns so execution cannot fail on a bad regex.
func indexable(q query.Has) (Plan, bool, error) {
	ix, ok := query.ClassifyHas(q)
	if !ok {
		return nil, false, nil
	}
	switch ix.Kind {
	case query.HasIndexType:
		return IndexScan{Op: OpType, Type: ix.Type}, true, nil
	case query.HasIndexSource:
		return IndexScan{Op: OpSource, Source: ix.Source}, true, nil
	default:
		if err := checkPattern(ix.Pattern); err != nil {
			return nil, false, err
		}
		return IndexScan{Op: OpCode, Systems: ix.Systems, Pattern: ix.Pattern}, true, nil
	}
}

func checkPattern(pattern string) error {
	if _, err := terminology.CompileCodePattern(pattern); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}
