package engine

// Adaptive feedback planning. The cost model's composition rule — child
// selectivities multiply — assumes independence, and clinical predicates
// violate it constantly (a diagnosis and the medication treating it
// select nearly the same patients). Rather than guess correlations up
// front, the executor records the true cardinality of every plan node it
// evaluates, keyed by the node's canonical key, and the optimizer
// consults those observations on the next planning pass: feedback
// replaces the estimate wherever an observation exists, including the
// conjunction prefixes evalAnd materializes on the way to its result.
//
// Observations carry a monotonically increasing epoch. Plans are
// memoized per (expression, epoch, store generation), so advancing
// feedback triggers a re-plan under the corrected estimates without
// evicting the plan an earlier epoch produced — both entries live in the
// memo side by side.
//
// Observations are also scoped to the store generation they were measured
// at: a cardinality observed before an append describes a population that
// no longer exists, so feedback recorded against an old generation is
// discarded on the first observation or lookup at a newer one, never
// poisoning plans for the grown store. The epoch does NOT reset when the
// generation advances — memo keys carry both components, so (epoch,
// generation) pairs never recur.

import (
	"container/list"
	"strconv"
	"sync"
)

const (
	// feedbackSize bounds the recorded observations (LRU).
	feedbackSize = 4096
	// planMemoSize bounds the memoized optimized plans (LRU).
	planMemoSize = 256
)

// feedback is a mutex-guarded LRU of observed true cardinalities, all
// from one store generation at a time.
type feedback struct {
	mu    sync.Mutex
	max   int
	epoch uint64
	gen   uint64
	ll    *list.List
	byKey map[string]*list.Element
}

type fbEntry struct {
	key  string
	rows int
}

func newFeedback(max int) *feedback {
	return &feedback{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

// observe records the true cardinality of an executed plan node, as
// measured at store generation gen. Observations from a superseded
// generation are discarded; the first observation at a newer generation
// drops everything recorded before it. The epoch advances only when the
// observation is news — a fresh key, or a value that moved by more than
// 10% — so repeated executions of a stable workload settle into a fixed
// epoch and the plan memo stays hot.
func (f *feedback) observe(gen uint64, key string, rows int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if gen != f.gen {
		if gen < f.gen {
			return // measured against a population that no longer exists
		}
		f.clearLocked()
		f.gen = gen
	}
	if el, ok := f.byKey[key]; ok {
		e := el.Value.(*fbEntry)
		f.ll.MoveToFront(el)
		if d := e.rows - rows; d*10 <= e.rows && -d*10 <= e.rows {
			return
		}
		e.rows = rows
		f.epoch++
		return
	}
	f.byKey[key] = f.ll.PushFront(&fbEntry{key: key, rows: rows})
	f.epoch++
	for f.ll.Len() > f.max {
		el := f.ll.Back()
		f.ll.Remove(el)
		delete(f.byKey, el.Value.(*fbEntry).key)
	}
}

// rowsFor returns the cardinality recorded at store generation gen for a
// plan key, if any; observations from any other generation never answer.
func (f *feedback) rowsFor(gen uint64, key string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if gen != f.gen {
		return 0, false
	}
	el, ok := f.byKey[key]
	if !ok {
		return 0, false
	}
	f.ll.MoveToFront(el)
	return el.Value.(*fbEntry).rows, true
}

// size reports the number of recorded observations.
func (f *feedback) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ll.Len()
}

// epochNow returns the current stats epoch.
func (f *feedback) epochNow() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// clearLocked drops every observation; the caller holds f.mu.
func (f *feedback) clearLocked() {
	f.ll.Init()
	f.byKey = make(map[string]*list.Element, f.max)
}

func (f *feedback) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clearLocked()
	f.epoch = 0
	f.gen = 0
}

// planMemo is a mutex-guarded LRU of optimized plans keyed by
// (expression key, feedback epoch) — see planMemoKey. Plans are
// immutable once built, so entries are shared, not cloned.
type planMemo struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	byKey map[string]*list.Element
}

type planMemoEntry struct {
	key string
	p   Plan
}

func newPlanMemo(max int) *planMemo {
	if max <= 0 {
		return nil
	}
	return &planMemo{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

func (c *planMemo) get(key string) (Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planMemoEntry).p, true
}

func (c *planMemo) put(key string, p Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planMemoEntry).p = p
		return
	}
	c.byKey[key] = c.ll.PushFront(&planMemoEntry{key: key, p: p})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*planMemoEntry).key)
	}
}

func (c *planMemo) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *planMemo) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element, c.max)
}

// planMemoKey builds the memo key for an expression at a feedback epoch
// and store generation. Components are joined with NUL separators — a
// byte no plan key contains (keys render from expression strings) — so
// distinct (expression, epoch, generation) triples can never collide by
// concatenation. The generation component is what guarantees a plan
// memoized before an append is never reused after it: the old key is
// simply never constructed again.
func planMemoKey(exprKey string, epoch, gen uint64) string {
	return strconv.FormatUint(gen, 10) + "\x00" + strconv.FormatUint(epoch, 10) + "\x00" + exprKey
}
