package sources

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Incremental writers. The batch Write* functions materialize a whole
// extract slice before anything hits disk; a Stream writes the same bytes
// chunk by chunk — header once at construction, then any number of Append
// calls — so arbitrarily large extracts (the 1M-patient fixtures) are
// produced in constant memory. Write*(w, recs) is exactly
// NewXStream(w) + Append(recs), so the two paths cannot drift.

// CSVStream appends records of one registry extract to an open CSV file.
type CSVStream[T any] struct {
	cw   *csv.Writer
	row  func(*T) []string
	what string
	n    int
}

func newCSVStream[T any](w io.Writer, header []string, row func(*T) []string, what string) (*CSVStream[T], error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, fmt.Errorf("sources: write %s header: %w", what, err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, fmt.Errorf("sources: write %s header: %w", what, err)
	}
	return &CSVStream[T]{cw: cw, row: row, what: what}, nil
}

// Append writes the records and flushes, so a crashed producer leaves a
// readable prefix. Record indices in errors count from the start of the
// stream, not the chunk.
func (s *CSVStream[T]) Append(recs []T) error {
	for i := range recs {
		if err := s.cw.Write(s.row(&recs[i])); err != nil {
			return fmt.Errorf("sources: write %s %d: %w", s.what, s.n+i, err)
		}
	}
	s.n += len(recs)
	s.cw.Flush()
	return s.cw.Error()
}

// NewPersonStream starts a demographic CSV extract.
func NewPersonStream(w io.Writer) (*CSVStream[Person], error) {
	return newCSVStream(w, personHeader, personRow, "person")
}

// NewGPClaimStream starts a GP-claims CSV extract.
func NewGPClaimStream(w io.Writer) (*CSVStream[GPClaim], error) {
	return newCSVStream(w, gpHeader, gpRow, "gp claim")
}

// NewEpisodeStream starts a hospital-episode CSV extract.
func NewEpisodeStream(w io.Writer) (*CSVStream[HospitalEpisode], error) {
	return newCSVStream(w, episodeHeader, episodeRow, "episode")
}

// NewMunicipalStream starts a municipal-services CSV extract.
func NewMunicipalStream(w io.Writer) (*CSVStream[MunicipalService], error) {
	return newCSVStream(w, municipalHeader, municipalRow, "municipal")
}

// JSONLStream appends records to an open JSONL file, one object per line.
type JSONLStream[T any] struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewJSONLStream starts a JSONL extract.
func NewJSONLStream[T any](w io.Writer) *JSONLStream[T] {
	bw := bufio.NewWriter(w)
	return &JSONLStream[T]{bw: bw, enc: json.NewEncoder(bw)}
}

// Append writes the records and flushes the line buffer.
func (s *JSONLStream[T]) Append(records []T) error {
	for i := range records {
		if err := s.enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("sources: write jsonl record %d: %w", s.n+i, err)
		}
	}
	s.n += len(records)
	return s.bw.Flush()
}
