package sources

import "testing"

// FuzzExtractBP exercises the free-text extraction against arbitrary note
// content: it must never panic and never return implausible readings.
func FuzzExtractBP(f *testing.F) {
	for _, seed := range []string{
		"BT 145/92",
		"bp 120 / 80 ellers fin",
		"Blodtrykk 160/95, oppfølging",
		"BTT 14090",
		"BT 90/145",
		"BT 9999/0",
		"", "///", "BT /", "BT -1/-2",
		"kontroll T90, BT 145/92 og noe mer",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sys, dia, ok := ExtractBP(text)
		if !ok {
			if sys != 0 || dia != 0 {
				t.Fatalf("not-ok extraction leaked values: %d/%d", sys, dia)
			}
			return
		}
		if sys < 60 || sys > 260 || dia < 30 || dia > 160 || dia >= sys {
			t.Fatalf("implausible extraction accepted: %d/%d from %q", sys, dia, text)
		}
	})
}

// FuzzExtractICPCMention must only ever return codes shaped like ICPC-2.
func FuzzExtractICPCMention(f *testing.F) {
	for _, seed := range []string{"kontroll T90", "icd E11", "", "A0", "Z99 X00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		code := ExtractICPCMention(text)
		if code == "" {
			return
		}
		if len(code) != 3 {
			t.Fatalf("malformed code %q", code)
		}
		ch := code[0]
		valid := false
		for _, c := range "ABDFHKLNPRSTUWXYZ" {
			if ch == byte(c) {
				valid = true
			}
		}
		if !valid || code[1] < '0' || code[1] > '9' || code[2] < '0' || code[2] > '9' {
			t.Fatalf("non-ICPC code %q extracted", code)
		}
	})
}
