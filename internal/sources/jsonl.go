package sources

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONL codecs: one JSON object per line. The prescription, specialist and
// physio extracts arrive in this shape; WriteJSONL/ReadJSONL are generic so
// any record type round-trips.

// WriteJSONL writes one JSON object per line.
func WriteJSONL[T any](w io.Writer, records []T) error {
	return NewJSONLStream[T](w).Append(records)
}

// ReadJSONL reads one JSON object per line until EOF.
func ReadJSONL[T any](r io.Reader) ([]T, error) {
	var out []T
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var rec T
		err := dec.Decode(&rec)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sources: read jsonl record %d: %w", i, err)
		}
		out = append(out, rec)
	}
}
