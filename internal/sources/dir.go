package sources

import (
	"fmt"
	"os"
	"path/filepath"
)

// ReadDir loads a bundle from the file layout datagen writes: the
// heterogeneous registry delivery as it lands on disk.
func ReadDir(dir string) (*Bundle, error) {
	b := &Bundle{}
	open := func(name string, load func(*os.File) error) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("sources: %w", err)
		}
		defer f.Close()
		if err := load(f); err != nil {
			return err
		}
		return nil
	}
	if err := open("persons.csv", func(f *os.File) (err error) {
		b.Persons, err = ReadPersons(f)
		return
	}); err != nil {
		return nil, err
	}
	if err := open("gp_claims.csv", func(f *os.File) (err error) {
		b.GPClaims, err = ReadGPClaims(f)
		return
	}); err != nil {
		return nil, err
	}
	if err := open("episodes.csv", func(f *os.File) (err error) {
		b.Episodes, err = ReadEpisodes(f)
		return
	}); err != nil {
		return nil, err
	}
	if err := open("municipal.csv", func(f *os.File) (err error) {
		b.Municipal, err = ReadMunicipal(f)
		return
	}); err != nil {
		return nil, err
	}
	if err := open("prescriptions.jsonl", func(f *os.File) (err error) {
		b.Prescriptions, err = ReadJSONL[Prescription](f)
		return
	}); err != nil {
		return nil, err
	}
	if err := open("specialist.jsonl", func(f *os.File) (err error) {
		b.Specialist, err = ReadJSONL[SpecialistClaim](f)
		return
	}); err != nil {
		return nil, err
	}
	if err := open("physio.jsonl", func(f *os.File) (err error) {
		b.Physio, err = ReadJSONL[PhysioClaim](f)
		return
	}); err != nil {
		return nil, err
	}
	return b, nil
}
