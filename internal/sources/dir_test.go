package sources

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeBundleDir writes a bundle in the datagen file layout.
func writeBundleDir(t *testing.T, dir string, b *Bundle) {
	t.Helper()
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	write("persons.csv", func(f *os.File) error { return WritePersons(f, b.Persons) })
	write("gp_claims.csv", func(f *os.File) error { return WriteGPClaims(f, b.GPClaims) })
	write("episodes.csv", func(f *os.File) error { return WriteEpisodes(f, b.Episodes) })
	write("municipal.csv", func(f *os.File) error { return WriteMunicipal(f, b.Municipal) })
	write("prescriptions.jsonl", func(f *os.File) error { return WriteJSONL(f, b.Prescriptions) })
	write("specialist.jsonl", func(f *os.File) error { return WriteJSONL(f, b.Specialist) })
	write("physio.jsonl", func(f *os.File) error { return WriteJSONL(f, b.Physio) })
}

func TestReadDirRoundTrip(t *testing.T) {
	in := &Bundle{
		Persons:  []Person{{ID: 1, BirthDate: "1950-06-01", Sex: "F", Municipality: 5001}},
		GPClaims: []GPClaim{{Person: 1, Date: "2010-01-05", ICPC: "T90", Amount: 150, Text: "kontroll"}},
		Episodes: []HospitalEpisode{{Person: 1, Admitted: "2010-02-01", Discharged: "2010-02-08",
			Mode: ModeInpatient, MainICD: "I21.9", SecondaryICD: []string{"E11.9"}}},
		Municipal:     []MunicipalService{{Person: 1, Service: ServiceHomeCare, From: "2010-03-01", To: ""}},
		Prescriptions: []Prescription{{Person: 1, Date: "2010-01-05", ATC: "A10BA02", DurationDays: 90}},
		Specialist:    []SpecialistClaim{{Person: 1, Date: "2010-04-01", ICD: "F32", Specialty: "psychiatry"}},
		Physio:        []PhysioClaim{{Person: 1, Date: "2010-05-01", ICPC: "L03", Sessions: 8}},
	}
	dir := t.TempDir()
	writeBundleDir(t, dir, in)

	out, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReadDirMissingFile(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestReadDirCorruptFile(t *testing.T) {
	in := &Bundle{Persons: []Person{{ID: 1, BirthDate: "1950-06-01", Sex: "F"}}}
	dir := t.TempDir()
	writeBundleDir(t, dir, in)
	if err := os.WriteFile(filepath.Join(dir, "episodes.csv"), []byte("wrong,header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Error("corrupt episodes file accepted")
	}
}
