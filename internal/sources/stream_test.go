package sources

import (
	"bytes"
	"testing"
)

// TestStreamsMatchBatchWriters: chunked Append calls must produce the
// exact bytes of the one-shot Write* functions — including empty chunks
// and the header-only empty extract — so streamed fixtures are readable
// by the same strict-header readers.
func TestStreamsMatchBatchWriters(t *testing.T) {
	persons := []Person{
		{ID: 1, BirthDate: "1950-02-03", Sex: "F", Municipality: 301},
		{ID: 2, BirthDate: "1980-11-30", Sex: "M", Municipality: 5001},
		{ID: 3, BirthDate: "2004-07-07", Sex: "F", Municipality: 1103},
	}
	var batch bytes.Buffer
	if err := WritePersons(&batch, persons); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 2, 3, 5} {
		var streamed bytes.Buffer
		s, err := NewPersonStream(&streamed)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(nil); err != nil { // empty chunks are fine
			t.Fatal(err)
		}
		for lo := 0; lo < len(persons); lo += chunk {
			hi := min(lo+chunk, len(persons))
			if err := s.Append(persons[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
			t.Errorf("chunk %d: streamed CSV differs from batch output", chunk)
		}
	}

	var empty bytes.Buffer
	if _, err := NewPersonStream(&empty); err != nil {
		t.Fatal(err)
	}
	if ps, err := ReadPersons(&empty); err != nil || len(ps) != 0 {
		t.Errorf("header-only stream should read as empty extract (ps=%v err=%v)", ps, err)
	}
}

func TestJSONLStreamMatchesBatch(t *testing.T) {
	recs := []Prescription{
		{Person: 1, Date: "2010-01-01", ATC: "C07AB02", DurationDays: 90},
		{Person: 2, Date: "2010-06-15", ATC: "A10BA02", DurationDays: 30},
		{Person: 3, Date: "2011-03-20", ATC: "N02BE01", DurationDays: 10},
	}
	var batch bytes.Buffer
	if err := WriteJSONL(&batch, recs); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	s := NewJSONLStream[Prescription](&streamed)
	for i := range recs {
		if err := s.Append(recs[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
		t.Error("streamed JSONL differs from batch output")
	}
	out, err := ReadJSONL[Prescription](&streamed)
	if err != nil || len(out) != len(recs) {
		t.Fatalf("streamed JSONL unreadable: %v (%d records)", err, len(out))
	}
}
