package sources

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV codecs for the registry extracts. Every registry delivers a flat file
// with a fixed header; numbers use plain decimal notation. The readers are
// strict about header shape (catching wrong-file mistakes early) but
// tolerant about record payloads — empty code fields are data, not errors.

var gpHeader = []string{"person", "date", "emergency", "icpc", "systolic", "diastolic", "amount", "text"}

func gpRow(c *GPClaim) []string {
	return []string{
		strconv.FormatUint(c.Person, 10),
		c.Date,
		boolStr(c.Emergency),
		c.ICPC,
		strconv.Itoa(c.Systolic),
		strconv.Itoa(c.Diastolic),
		strconv.FormatFloat(c.Amount, 'f', 2, 64),
		c.Text,
	}
}

// WriteGPClaims writes claims as CSV with header.
func WriteGPClaims(w io.Writer, claims []GPClaim) error {
	s, err := NewGPClaimStream(w)
	if err != nil {
		return err
	}
	return s.Append(claims)
}

// ReadGPClaims parses a GP-claims CSV produced by WriteGPClaims.
func ReadGPClaims(r io.Reader) ([]GPClaim, error) {
	rows, err := readCSV(r, gpHeader, "gp claims")
	if err != nil {
		return nil, err
	}
	out := make([]GPClaim, 0, len(rows))
	for i, row := range rows {
		person, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sources: gp claims row %d: person: %w", i+1, err)
		}
		sys, _ := strconv.Atoi(row[4])
		dia, _ := strconv.Atoi(row[5])
		amount, _ := strconv.ParseFloat(row[6], 64)
		out = append(out, GPClaim{
			Person:    person,
			Date:      row[1],
			Emergency: row[2] == "1",
			ICPC:      row[3],
			Systolic:  sys,
			Diastolic: dia,
			Amount:    amount,
			Text:      row[7],
		})
	}
	return out, nil
}

var episodeHeader = []string{"person", "admitted", "discharged", "mode", "main_icd", "secondary_icd", "department"}

func episodeRow(e *HospitalEpisode) []string {
	return []string{
		strconv.FormatUint(e.Person, 10),
		e.Admitted,
		e.Discharged,
		e.Mode,
		e.MainICD,
		strings.Join(e.SecondaryICD, ";"),
		e.Department,
	}
}

// WriteEpisodes writes hospital episodes as CSV with header.
func WriteEpisodes(w io.Writer, eps []HospitalEpisode) error {
	s, err := NewEpisodeStream(w)
	if err != nil {
		return err
	}
	return s.Append(eps)
}

// ReadEpisodes parses a hospital-episode CSV produced by WriteEpisodes.
func ReadEpisodes(r io.Reader) ([]HospitalEpisode, error) {
	rows, err := readCSV(r, episodeHeader, "episodes")
	if err != nil {
		return nil, err
	}
	out := make([]HospitalEpisode, 0, len(rows))
	for i, row := range rows {
		person, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sources: episodes row %d: person: %w", i+1, err)
		}
		var secondary []string
		if row[5] != "" {
			secondary = strings.Split(row[5], ";")
		}
		out = append(out, HospitalEpisode{
			Person:       person,
			Admitted:     row[1],
			Discharged:   row[2],
			Mode:         row[3],
			MainICD:      row[4],
			SecondaryICD: secondary,
			Department:   row[6],
		})
	}
	return out, nil
}

var municipalHeader = []string{"person", "service", "from", "to"}

func municipalRow(s *MunicipalService) []string {
	return []string{strconv.FormatUint(s.Person, 10), s.Service, s.From, s.To}
}

// WriteMunicipal writes municipal service decisions as CSV with header.
func WriteMunicipal(w io.Writer, svcs []MunicipalService) error {
	s, err := NewMunicipalStream(w)
	if err != nil {
		return err
	}
	return s.Append(svcs)
}

// ReadMunicipal parses a municipal-services CSV produced by WriteMunicipal.
func ReadMunicipal(r io.Reader) ([]MunicipalService, error) {
	rows, err := readCSV(r, municipalHeader, "municipal")
	if err != nil {
		return nil, err
	}
	out := make([]MunicipalService, 0, len(rows))
	for i, row := range rows {
		person, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sources: municipal row %d: person: %w", i+1, err)
		}
		out = append(out, MunicipalService{Person: person, Service: row[1], From: row[2], To: row[3]})
	}
	return out, nil
}

var personHeader = []string{"id", "birth", "sex", "municipality"}

func personRow(p *Person) []string {
	return []string{strconv.FormatUint(p.ID, 10), p.BirthDate, p.Sex, strconv.Itoa(p.Municipality)}
}

// WritePersons writes the demographic extract as CSV with header.
func WritePersons(w io.Writer, ps []Person) error {
	s, err := NewPersonStream(w)
	if err != nil {
		return err
	}
	return s.Append(ps)
}

// ReadPersons parses a demographic CSV produced by WritePersons.
func ReadPersons(r io.Reader) ([]Person, error) {
	rows, err := readCSV(r, personHeader, "persons")
	if err != nil {
		return nil, err
	}
	out := make([]Person, 0, len(rows))
	for i, row := range rows {
		id, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sources: persons row %d: id: %w", i+1, err)
		}
		mun, _ := strconv.Atoi(row[3])
		out = append(out, Person{ID: id, BirthDate: row[1], Sex: row[2], Municipality: mun})
	}
	return out, nil
}

// readCSV reads all rows and validates the header.
func readCSV(r io.Reader, header []string, what string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sources: read %s: %w", what, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("sources: read %s: missing header", what)
	}
	for i, col := range header {
		if rows[0][i] != col {
			return nil, fmt.Errorf("sources: read %s: header column %d is %q, want %q", what, i, rows[0][i], col)
		}
	}
	return rows[1:], nil
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
