package sources

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestGPClaimsCSVRoundTrip(t *testing.T) {
	in := []GPClaim{
		{Person: 1, Date: "2010-01-05", Emergency: false, ICPC: "T90", Systolic: 145, Diastolic: 92, Amount: 152.50, Text: "kontroll, BT 145/92"},
		{Person: 2, Date: "2010-02-10", Emergency: true, ICPC: "", Amount: 310, Text: "akutt, magesmerter"},
		{Person: 3, Date: "2011-12-31", ICPC: "K86", Text: "text with, comma and \"quotes\""},
	}
	var buf bytes.Buffer
	if err := WriteGPClaims(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadGPClaims(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestEpisodesCSVRoundTrip(t *testing.T) {
	in := []HospitalEpisode{
		{Person: 1, Admitted: "2010-03-01", Discharged: "2010-03-08", Mode: ModeInpatient, MainICD: "I21.9", SecondaryICD: []string{"E11.9", "I10"}, Department: "cardiology"},
		{Person: 2, Admitted: "2010-04-01", Mode: ModeOutpatient, MainICD: "J44"},
	}
	var buf bytes.Buffer
	if err := WriteEpisodes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEpisodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestMunicipalCSVRoundTrip(t *testing.T) {
	in := []MunicipalService{
		{Person: 1, Service: ServiceHomeCare, From: "2010-05-01", To: "2010-11-01"},
		{Person: 2, Service: ServiceNursing, From: "2011-01-01", To: ""},
	}
	var buf bytes.Buffer
	if err := WriteMunicipal(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMunicipal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestPersonsCSVRoundTrip(t *testing.T) {
	in := []Person{
		{ID: 1, BirthDate: "1950-06-01", Sex: "F", Municipality: 5001},
		{ID: 2, BirthDate: "1980-12-24", Sex: "M", Municipality: 301},
	}
	var buf bytes.Buffer
	if err := WritePersons(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPersons(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReadRejectsWrongHeader(t *testing.T) {
	if _, err := ReadGPClaims(strings.NewReader("a,b,c,d,e,f,g,h\n")); err == nil {
		t.Error("wrong header accepted")
	}
	if _, err := ReadPersons(strings.NewReader("")); err == nil {
		t.Error("empty file accepted")
	}
}

func TestReadRejectsBadPerson(t *testing.T) {
	csv := "person,date,emergency,icpc,systolic,diastolic,amount,text\nnot-a-number,2010-01-01,0,,0,0,0,\n"
	if _, err := ReadGPClaims(strings.NewReader(csv)); err == nil {
		t.Error("bad person id accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Prescription{
		{Person: 1, Date: "2010-01-05", ATC: "A10BA02", DurationDays: 90},
		{Person: 2, Date: "2010-06-01", ATC: "C07AB02", DurationDays: 30},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("expected 2 lines, got %d", got)
	}
	out, err := ReadJSONL[Prescription](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL[Prescription](strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestJSONLEmpty(t *testing.T) {
	out, err := ReadJSONL[SpecialistClaim](strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %v", out, err)
	}
}

func TestExtractBP(t *testing.T) {
	cases := []struct {
		text     string
		sys, dia int
		ok       bool
	}{
		{"kontroll, BT 145/92", 145, 92, true},
		{"BT: 140/90 ellers fin", 140, 90, true},
		{"bp 120 / 80", 120, 80, true},
		{"Blodtrykk 160/95, oppfølging", 160, 95, true},
		{"BTT 14090", 0, 0, false},                // typo'd convention
		{"ingen måling i dag", 0, 0, false},       // no reading
		{"BT 90/145", 0, 0, false},                // transposed (dia >= sys)
		{"BT 300/90", 0, 0, false},                // implausible
		{"BT 145/92 og BT 150/95", 145, 92, true}, // first wins
	}
	for _, c := range cases {
		s, d, ok := ExtractBP(c.text)
		if ok != c.ok || s != c.sys || d != c.dia {
			t.Errorf("ExtractBP(%q) = %d/%d %v, want %d/%d %v", c.text, s, d, ok, c.sys, c.dia, c.ok)
		}
	}
}

func TestExtractICPCMention(t *testing.T) {
	if got := ExtractICPCMention("kontroll T90 stabil"); got != "T90" {
		t.Errorf("got %q", got)
	}
	if got := ExtractICPCMention("ingen koder her"); got != "" {
		t.Errorf("got %q", got)
	}
	// E is not an ICPC-2 chapter; E11 must not be extracted as ICPC.
	if got := ExtractICPCMention("icd E11 nevnt"); got != "" {
		t.Errorf("ICD code extracted as ICPC: %q", got)
	}
}

func TestBundleTotalRecords(t *testing.T) {
	b := Bundle{
		GPClaims:      make([]GPClaim, 3),
		Prescriptions: make([]Prescription, 2),
		Episodes:      make([]HospitalEpisode, 1),
	}
	if got := b.TotalRecords(); got != 6 {
		t.Errorf("TotalRecords = %d", got)
	}
}
