package sources

import (
	"regexp"
	"strconv"
)

// Free-text extraction. The paper: "Regular expressions are also used for
// extraction of some of the available free text data ... However, this
// extraction is limited because of differing conventions and many typing
// errors in the text." We extract blood-pressure readings from GP notes;
// the extraction tests measure exactly that limitation against the typo
// rate the synthetic notes carry.

// bpPattern matches the conventions Norwegian GP notes actually use for a
// blood pressure: "BT 140/90", "BT: 140/90", "bp 140/90", "blodtrykk
// 140/90". Typo'd variants ("BTT 14090") intentionally fall outside it.
var bpPattern = regexp.MustCompile(`(?i)\b(?:BT|BP|blodtrykk)[.: ]{0,2}([0-9]{2,3})\s*/\s*([0-9]{2,3})\b`)

// ExtractBP pulls a systolic/diastolic pair out of a free-text note.
// ok is false when no convention-conforming reading is present.
func ExtractBP(text string) (systolic, diastolic int, ok bool) {
	m := bpPattern.FindStringSubmatch(text)
	if m == nil {
		return 0, 0, false
	}
	s, err1 := strconv.Atoi(m[1])
	d, err2 := strconv.Atoi(m[2])
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	// Plausibility gates: transposed or truncated numbers are rejected
	// rather than imported as clinical fact.
	if s < 60 || s > 260 || d < 30 || d > 160 || d >= s {
		return 0, 0, false
	}
	return s, d, true
}

// icpcMention matches an ICPC-2 code mentioned inline in a note, e.g.
// "kontroll T90" — used when the structured code field is empty.
var icpcMention = regexp.MustCompile(`\b([ABDFHKLNPRSTUWXYZ][0-9]{2})\b`)

// ExtractICPCMention returns the first ICPC-2-shaped code mentioned in the
// text, or "".
func ExtractICPCMention(text string) string {
	m := icpcMention.FindStringSubmatch(text)
	if m == nil {
		return ""
	}
	return m[1]
}
