// Package sources defines the heterogeneous registry record formats the
// workbench aggregates — "any visit to a hospital (inpatient, outpatient or
// day treatment), receiving services from the adjacent municipalities (home
// care services, nursing home etc.) and visits to a primary care provider
// (GP, emergency primary care services operated by GPs, physiotherapist
// etc.) or private medical specialist where the provider had claimed
// reimbursement" — together with CSV and JSONL codecs and the limited
// regex-based free-text extraction the paper describes.
//
// Records deliberately keep registry-shaped raw fields (string dates,
// source-local coding) — normalization into the unified model is the
// integration layer's job, which keeps the workbench "independent of the
// database schema".
package sources

// Person is the demographic extract shared by all registries; the person
// number is the linkage key.
type Person struct {
	ID           uint64 `json:"id"`
	BirthDate    string `json:"birth"` // YYYY-MM-DD
	Sex          string `json:"sex"`   // "F" or "M"
	Municipality int    `json:"municipality"`
}

// GPClaim is a primary-care reimbursement claim (KUHR-style): one row per
// contact with a GP or the GP-operated emergency service.
type GPClaim struct {
	Person    uint64  `json:"person"`
	Date      string  `json:"date"` // YYYY-MM-DD
	Emergency bool    `json:"emergency"`
	ICPC      string  `json:"icpc"` // may be empty for administrative contacts
	Systolic  int     `json:"systolic,omitempty"`
	Diastolic int     `json:"diastolic,omitempty"`
	Text      string  `json:"text,omitempty"` // free-text note, typos and all
	Amount    float64 `json:"amount"`         // reimbursed NOK
}

// Prescription is a dispensed-medication record (NorPD-style).
type Prescription struct {
	Person       uint64 `json:"person"`
	Date         string `json:"date"`
	ATC          string `json:"atc"`
	DurationDays int    `json:"duration_days"`
}

// HospitalEpisode is a specialist-care episode (NPR-style): an inpatient
// stay, outpatient visit or day treatment, with ICD-10 coding.
type HospitalEpisode struct {
	Person       uint64   `json:"person"`
	Admitted     string   `json:"admitted"`
	Discharged   string   `json:"discharged"` // empty for single-day contact
	Mode         string   `json:"mode"`       // "inpatient", "outpatient", "day"
	MainICD      string   `json:"main_icd"`
	SecondaryICD []string `json:"secondary_icd,omitempty"`
	Department   string   `json:"department,omitempty"`
}

// Episode modes.
const (
	ModeInpatient  = "inpatient"
	ModeOutpatient = "outpatient"
	ModeDay        = "day"
)

// MunicipalService is a municipal care decision (IPLOS-style): a service
// interval such as home care or a nursing-home stay.
type MunicipalService struct {
	Person  uint64 `json:"person"`
	Service string `json:"service"` // "homecare" or "nursing"
	From    string `json:"from"`
	To      string `json:"to"` // empty = still running at extract time
}

// Municipal service kinds.
const (
	ServiceHomeCare = "homecare"
	ServiceNursing  = "nursing"
)

// SpecialistClaim is a private-specialist reimbursement claim, ICD-10 coded.
type SpecialistClaim struct {
	Person    uint64 `json:"person"`
	Date      string `json:"date"`
	ICD       string `json:"icd"`
	Specialty string `json:"specialty,omitempty"`
	Text      string `json:"text,omitempty"`
}

// PhysioClaim is a physiotherapy claim, ICPC-2 coded.
type PhysioClaim struct {
	Person   uint64 `json:"person"`
	Date     string `json:"date"`
	ICPC     string `json:"icpc"`
	Sessions int    `json:"sessions"`
}

// Bundle is one extract from every registry for the same population — the
// integration layer's input.
type Bundle struct {
	Persons       []Person           `json:"persons,omitempty"`
	GPClaims      []GPClaim          `json:"gp_claims,omitempty"`
	Prescriptions []Prescription     `json:"prescriptions,omitempty"`
	Episodes      []HospitalEpisode  `json:"episodes,omitempty"`
	Municipal     []MunicipalService `json:"municipal,omitempty"`
	Specialist    []SpecialistClaim  `json:"specialist,omitempty"`
	Physio        []PhysioClaim      `json:"physio,omitempty"`
}

// TotalRecords counts all records across registries (persons excluded).
func (b *Bundle) TotalRecords() int {
	return len(b.GPClaims) + len(b.Prescriptions) + len(b.Episodes) +
		len(b.Municipal) + len(b.Specialist) + len(b.Physio)
}
