package perception

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ResponseBudget audits interactive operations against a latency limit.
// "Shneiderman states that response times for mouse and typing actions
// should be less than 0.1 second" — the workbench session wraps every
// interactive operation in Track, and experiment E5 reports which
// operations blow the budget at which cohort sizes.

// ShneidermanLimit is the paper's interactive-response budget.
const ShneidermanLimit = 100 * time.Millisecond

// Budget collects operation timings.
type Budget struct {
	Limit time.Duration

	mu      sync.Mutex
	samples map[string][]time.Duration
}

// NewBudget creates a tracker with the given limit (0 = ShneidermanLimit).
func NewBudget(limit time.Duration) *Budget {
	if limit <= 0 {
		limit = ShneidermanLimit
	}
	return &Budget{Limit: limit, samples: make(map[string][]time.Duration)}
}

// Track measures fn under the operation name.
func (b *Budget) Track(op string, fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	b.Record(op, d)
	return d
}

// Record adds an externally measured sample.
func (b *Budget) Record(op string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.samples[op] = append(b.samples[op], d)
}

// OpStats summarizes one operation.
type OpStats struct {
	Op           string
	N            int
	Mean, Max    time.Duration
	WithinBudget bool // Max <= Limit
}

// Report summarizes all operations, sorted by name.
func (b *Budget) Report() []OpStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	ops := make([]string, 0, len(b.samples))
	for op := range b.samples {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	out := make([]OpStats, 0, len(ops))
	for _, op := range ops {
		ss := b.samples[op]
		var total, max time.Duration
		for _, d := range ss {
			total += d
			if d > max {
				max = d
			}
		}
		out = append(out, OpStats{
			Op:           op,
			N:            len(ss),
			Mean:         total / time.Duration(len(ss)),
			Max:          max,
			WithinBudget: max <= b.Limit,
		})
	}
	return out
}

// Violations returns the operations whose worst case exceeded the limit.
func (b *Budget) Violations() []OpStats {
	var out []OpStats
	for _, s := range b.Report() {
		if !s.WithinBudget {
			out = append(out, s)
		}
	}
	return out
}

// String renders the report as the E5 table rows.
func (b *Budget) String() string {
	out := fmt.Sprintf("response budget %v:\n", b.Limit)
	for _, s := range b.Report() {
		status := "ok"
		if !s.WithinBudget {
			status = "OVER"
		}
		out += fmt.Sprintf("  %-24s n=%-4d mean=%-12v max=%-12v %s\n",
			s.Op, s.N, s.Mean.Round(time.Microsecond), s.Max.Round(time.Microsecond), status)
	}
	return out
}
