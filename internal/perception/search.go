// Package perception models the two cognitive results the paper builds its
// encoding and responsiveness decisions on: preattentive visual search
// ("the time used to process the visualization is independent of the number
// of distracting elements", vs. conjunction search where it "increases
// linearly") and Shneiderman's 0.1-second response budget for mouse and
// typing actions.
//
// The search model is the standard Treisman-style account: response time =
// base + slope·N + noise, with slope ≈ 0 for feature search and a
// positive per-item cost for conjunction search. Simulating it regenerates
// the flat-vs-linear series behind Fig. 3 (experiment F3).
package perception

import (
	"fmt"
	"math"
	"math/rand"
)

// Mode selects the search task.
type Mode int

const (
	// Feature search: the target differs in one preattentive feature.
	Feature Mode = iota
	// Conjunction search: the target is defined by two features jointly.
	Conjunction
)

func (m Mode) String() string {
	if m == Feature {
		return "feature"
	}
	return "conjunction"
}

// Model holds the response-time parameters in milliseconds. Defaults follow
// the visual-search literature the paper cites (Healey; Treisman & Gelade):
// flat feature search around half a second, conjunction search with a
// 20-30 ms per-item cost on target-present trials.
type Model struct {
	FeatureBase      float64 // ms
	FeatureSlope     float64 // ms per distractor
	ConjunctionBase  float64 // ms
	ConjunctionSlope float64 // ms per distractor
	NoiseSD          float64 // ms, residual variability
}

// DefaultModel returns the literature-calibrated parameters.
func DefaultModel() Model {
	return Model{
		FeatureBase:      480,
		FeatureSlope:     0.6,
		ConjunctionBase:  450,
		ConjunctionSlope: 26,
		NoiseSD:          55,
	}
}

// Trial simulates one search trial and returns the response time in ms.
func (m Model) Trial(rng *rand.Rand, mode Mode, distractors int) float64 {
	var base, slope float64
	switch mode {
	case Feature:
		base, slope = m.FeatureBase, m.FeatureSlope
	default:
		base, slope = m.ConjunctionBase, m.ConjunctionSlope
	}
	rt := base + slope*float64(distractors) + rng.NormFloat64()*m.NoiseSD
	if rt < 150 { // physiological floor
		rt = 150
	}
	return rt
}

// Point is one cell of the search-time series.
type Point struct {
	Distractors int
	MeanRT      float64 // ms
	SD          float64 // ms
	Trials      int
}

// Series simulates trials per distractor count and returns mean response
// times — the data behind the F3 plot.
func (m Model) Series(mode Mode, distractorCounts []int, trials int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Point, 0, len(distractorCounts))
	for _, n := range distractorCounts {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			rt := m.Trial(rng, mode, n)
			sum += rt
			sumSq += rt * rt
		}
		mean := sum / float64(trials)
		variance := sumSq/float64(trials) - mean*mean
		if variance < 0 {
			variance = 0
		}
		out = append(out, Point{Distractors: n, MeanRT: mean, SD: math.Sqrt(variance), Trials: trials})
	}
	return out
}

// FitLine least-squares fits RT = intercept + slope·N over the series.
func FitLine(points []Point) (intercept, slope float64) {
	n := float64(len(points))
	if n < 2 {
		if n == 1 {
			return points[0].MeanRT, 0
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x, y := float64(p.Distractors), p.MeanRT
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return intercept, slope
}

// FormatSeries renders a series as the table EXPERIMENTS.md embeds.
func FormatSeries(mode Mode, points []Point) string {
	out := fmt.Sprintf("%s search:\n", mode)
	for _, p := range points {
		out += fmt.Sprintf("  N=%-3d meanRT=%6.1f ms (sd %5.1f, %d trials)\n",
			p.Distractors, p.MeanRT, p.SD, p.Trials)
	}
	_, slope := FitLine(points)
	out += fmt.Sprintf("  slope: %.1f ms/item\n", slope)
	return out
}
