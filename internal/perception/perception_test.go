package perception

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

var ns = []int{1, 5, 10, 20, 30, 50}

func TestFeatureSearchFlat(t *testing.T) {
	m := DefaultModel()
	series := m.Series(Feature, ns, 400, 1)
	_, slope := FitLine(series)
	if slope > 5 {
		t.Errorf("feature slope = %.2f ms/item; preattentive search must be flat", slope)
	}
}

func TestConjunctionSearchLinear(t *testing.T) {
	m := DefaultModel()
	series := m.Series(Conjunction, ns, 400, 1)
	_, slope := FitLine(series)
	if slope < 15 || slope > 40 {
		t.Errorf("conjunction slope = %.2f ms/item; want the literature's 20-30", slope)
	}
	// RT at 50 distractors clearly exceeds RT at 1.
	if series[len(series)-1].MeanRT < series[0].MeanRT+500 {
		t.Errorf("conjunction search did not grow: %v", series)
	}
}

func TestSeriesDeterministic(t *testing.T) {
	m := DefaultModel()
	a := m.Series(Feature, ns, 50, 7)
	b := m.Series(Feature, ns, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("series not deterministic")
		}
	}
}

func TestTrialFloor(t *testing.T) {
	m := Model{FeatureBase: 10, NoiseSD: 0}
	rng := rand.New(rand.NewSource(1))
	if rt := m.Trial(rng, Feature, 0); rt != 150 {
		t.Errorf("floor broken: %f", rt)
	}
}

func TestFitLineEdgeCases(t *testing.T) {
	if i, s := FitLine(nil); i != 0 || s != 0 {
		t.Error("empty fit broken")
	}
	if i, s := FitLine([]Point{{Distractors: 5, MeanRT: 300}}); i != 300 || s != 0 {
		t.Error("single-point fit broken")
	}
	// Same x twice: degenerate denominator.
	pts := []Point{{Distractors: 5, MeanRT: 100}, {Distractors: 5, MeanRT: 200}}
	if _, s := FitLine(pts); s != 0 {
		t.Error("degenerate fit should have zero slope")
	}
	// Exact line.
	exact := []Point{{Distractors: 0, MeanRT: 100}, {Distractors: 10, MeanRT: 200}}
	i, s := FitLine(exact)
	if i != 100 || s != 10 {
		t.Errorf("exact fit = %f + %f·N", i, s)
	}
}

func TestFormatSeries(t *testing.T) {
	m := DefaultModel()
	out := FormatSeries(Conjunction, m.Series(Conjunction, []int{1, 10}, 20, 1))
	for _, want := range []string{"conjunction search", "N=1", "slope:"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q in %q", want, out)
		}
	}
}

func TestModeString(t *testing.T) {
	if Feature.String() != "feature" || Conjunction.String() != "conjunction" {
		t.Error("mode stringers broken")
	}
}

func TestBudgetTracking(t *testing.T) {
	b := NewBudget(50 * time.Millisecond)
	d := b.Track("fast", func() {})
	if d > 50*time.Millisecond {
		t.Skip("machine too slow for timing assertions")
	}
	b.Record("slow", 80*time.Millisecond)
	b.Record("slow", 10*time.Millisecond)

	report := b.Report()
	if len(report) != 2 {
		t.Fatalf("report = %v", report)
	}
	if report[0].Op != "fast" || !report[0].WithinBudget {
		t.Errorf("fast op misreported: %+v", report[0])
	}
	if report[1].Op != "slow" || report[1].WithinBudget {
		t.Errorf("slow op misreported: %+v", report[1])
	}
	if report[1].N != 2 || report[1].Max != 80*time.Millisecond {
		t.Errorf("slow stats wrong: %+v", report[1])
	}
	if report[1].Mean != 45*time.Millisecond {
		t.Errorf("mean = %v", report[1].Mean)
	}

	v := b.Violations()
	if len(v) != 1 || v[0].Op != "slow" {
		t.Errorf("violations = %v", v)
	}
	if !strings.Contains(b.String(), "OVER") {
		t.Error("budget stringer missing violation marker")
	}
}

func TestBudgetDefaultLimit(t *testing.T) {
	b := NewBudget(0)
	if b.Limit != ShneidermanLimit {
		t.Errorf("default limit = %v", b.Limit)
	}
}

func TestBudgetConcurrentSafety(t *testing.T) {
	b := NewBudget(0)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				b.Record("op", time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := b.Report()[0].N; got != 800 {
		t.Errorf("concurrent records = %d", got)
	}
}
