package pastas_test

import (
	"strings"
	"testing"

	"pastas"
)

// The facade smoke test: the public API alone supports the quickstart flow.
func TestFacadeQuickstartFlow(t *testing.T) {
	wb, err := pastas.Synthesize(pastas.DefaultSynthConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if wb.Patients() != 300 {
		t.Fatalf("patients = %d", wb.Patients())
	}

	// Cohort via the Query-Builder.
	q, err := pastas.NewQueryBuilder().HasCode(`T90|E11(\..*)?`).Compile()
	if err != nil {
		t.Fatal(err)
	}
	diabetics, err := pastas.NewCohort(wb, "diabetics", q)
	if err != nil {
		t.Fatal(err)
	}
	if diabetics.Count() == 0 {
		t.Fatal("no diabetics at n=300")
	}

	// Session: extract, align, render.
	sess, err := pastas.NewSession(wb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Extract(q); err != nil {
		t.Fatal(err)
	}
	anchor, err := pastas.AlignFirst("T90")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AlignOn(anchor); err != nil {
		t.Fatal(err)
	}
	svg := sess.RenderTimeline(pastas.TimelineOptions{MaxRows: 20})
	if !strings.Contains(svg, "<svg") {
		t.Error("render failed")
	}

	// Study criteria + survey.
	study, err := pastas.NewCohort(wb, "study", pastas.StudyCriteria(wb.Window))
	if err != nil {
		t.Fatal(err)
	}
	res := pastas.SimulateSurvey(study.Collection(), pastas.DefaultSurveyParams())
	if res.N != study.Count() {
		t.Error("survey size mismatch")
	}

	// Details-on-demand through the facade.
	h := wb.Store.Collection().At(0)
	if h.Len() > 0 {
		if lines := pastas.Details(h, h.Entries[0].Start, 3*pastas.Day); len(lines) == 0 {
			t.Error("no details")
		}
	}

	// Spec JSON round trip.
	spec := pastas.NewQueryBuilder().HasCodeIn("ICPC2", `F.*|H.*`).Spec()
	data, err := spec.MarshalJSONSpec()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pastas.ParseQuerySpec(data); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDate(t *testing.T) {
	d := pastas.Date(2010, 3, 5)
	if d.String() != "2010-03-05" {
		t.Errorf("Date = %s", d)
	}
	if pastas.ShneidermanLimit.Milliseconds() != 100 {
		t.Error("budget constant wrong")
	}
}
