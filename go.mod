module pastas

go 1.24
