// Command benchdiff turns `go test -bench` output into a committed
// trajectory file and gates regressions against it. Two modes:
//
//	benchdiff -bench bench.txt -write BENCH_PR6.json
//	benchdiff -bench bench.txt -baseline BENCH_PR6.json [-factor 2]
//
// The write mode captures every benchmark result line as {name, ns/op}
// JSON — the artifact each PR commits. The diff mode compares a fresh run
// against the committed baseline and exits non-zero when any named
// E-benchmark (the paper reproductions, BenchmarkE*) got more than
// -factor times slower, or vanished from the fresh run entirely. Sub-
// -floor baselines are reported but never gated: at -benchtime 1x a
// microsecond-scale result is scheduler noise, not a trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement; the committed BENCH files are a
// JSON array of these, sorted by name. Metrics carries any custom
// b.ReportMetric values the benchmark emitted (E13's failover latency
// percentiles, for example) — recorded for the trajectory, not gated.
type Result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches a result line: name, iteration count, ns/op, and
// whatever custom metric pairs follow. The -GOMAXPROCS suffix is
// stripped so runs from machines with different core counts compare by
// benchmark identity.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$`)
	metricPair = regexp.MustCompile(`(\d+(?:\.\d+)?(?:e[+-]?\d+)?) (\S+)`)
)

func parseBench(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]Result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: %s: bad ns/op in %q: %w", path, sc.Text(), err)
		}
		res := Result{Name: m[1], NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[pair[2]] = v
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")

	bench := flag.String("bench", "", "go test -bench output to parse (required)")
	write := flag.String("write", "", "write parsed results as JSON to this path and exit")
	baseline := flag.String("baseline", "", "committed BENCH JSON to diff against")
	factor := flag.Float64("factor", 2, "fail when fresh ns/op exceeds baseline × factor")
	floor := flag.Duration("floor", 100*time.Microsecond, "ignore baselines faster than this (single-iteration noise)")
	gate := flag.String("gate", "^BenchmarkE", "regexp of benchmark names the factor gate applies to")
	flag.Parse()

	if *bench == "" || (*write == "") == (*baseline == "") {
		log.Fatal("usage: benchdiff -bench out.txt (-write file.json | -baseline file.json)")
	}
	fresh, err := parseBench(*bench)
	if err != nil {
		log.Fatal(err)
	}
	if len(fresh) == 0 {
		log.Fatalf("no benchmark result lines in %s", *bench)
	}

	if *write != "" {
		results := make([]Result, 0, len(fresh))
		for _, res := range fresh {
			results = append(results, res)
		}
		sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d results to %s\n", len(results), *write)
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	var base []Result
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("%s: %v", *baseline, err)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		log.Fatalf("-gate: %v", err)
	}

	var failures []string
	for _, b := range base {
		if !gateRe.MatchString(b.Name) {
			continue
		}
		res, ok := fresh[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from fresh run", b.Name))
			continue
		}
		ns := res.NsPerOp
		ratio := ns / b.NsPerOp
		verdict := "ok"
		switch {
		case b.NsPerOp < float64(floor.Nanoseconds()):
			verdict = "skipped (below floor)"
		case ratio > *factor:
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2gx gate)",
				b.Name, ns, b.NsPerOp, ratio, *factor))
		}
		fmt.Printf("  %-60s %12.0f -> %12.0f ns/op  %5.2fx  %s\n", b.Name, b.NsPerOp, ns, ratio, verdict)
	}
	for name := range fresh {
		if gateRe.MatchString(name) && !inBaseline(base, name) {
			fmt.Printf("  %-60s new benchmark (no baseline)\n", name)
		}
	}
	if len(failures) > 0 {
		fmt.Println(strings.Repeat("-", 40))
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("bench diff clean")
}

func inBaseline(base []Result, name string) bool {
	for _, b := range base {
		if b.Name == name {
			return true
		}
	}
	return false
}
