// Command datagen emits a synthetic multi-registry extract to disk: the
// per-source files (CSV and JSONL) the integration layer consumes. It
// stands in for the Norwegian registry deliveries the paper aggregated.
//
// Usage:
//
//	datagen -patients 168000 -seed 42 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pastas/internal/sources"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	patients := flag.Int("patients", 10000, "population size")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	cfg := synth.DefaultConfig(*patients)
	cfg.Seed = *seed
	bundle := synth.Generate(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("  %-24s %8.1f KiB\n", name, float64(info.Size())/1024)
	}

	fmt.Printf("writing %d patients (%d records) to %s\n", *patients, bundle.TotalRecords(), *out)
	write("persons.csv", func(f *os.File) error { return sources.WritePersons(f, bundle.Persons) })
	write("gp_claims.csv", func(f *os.File) error { return sources.WriteGPClaims(f, bundle.GPClaims) })
	write("episodes.csv", func(f *os.File) error { return sources.WriteEpisodes(f, bundle.Episodes) })
	write("municipal.csv", func(f *os.File) error { return sources.WriteMunicipal(f, bundle.Municipal) })
	write("prescriptions.jsonl", func(f *os.File) error { return sources.WriteJSONL(f, bundle.Prescriptions) })
	write("specialist.jsonl", func(f *os.File) error { return sources.WriteJSONL(f, bundle.Specialist) })
	write("physio.jsonl", func(f *os.File) error { return sources.WriteJSONL(f, bundle.Physio) })
}
