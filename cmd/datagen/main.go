// Command datagen emits a synthetic multi-registry extract to disk: the
// per-source files (CSV and JSONL) the integration layer consumes. It
// stands in for the Norwegian registry deliveries the paper aggregated.
//
// Usage:
//
//	datagen -patients 168000 -seed 42 -out ./data
//	datagen -patients 1000000 -stream -out ./data
//
// The default mode materializes the whole bundle in memory before
// writing. -stream generates and writes in fixed-size patient chunks
// instead — constant memory regardless of population size — and, because
// every patient is seeded independently from (-seed, patient ID), the
// output files are byte-identical to the in-memory mode's.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pastas/internal/sources"
	"pastas/internal/synth"
)

// streamChunk is the patient-count granularity of -stream generation:
// large enough to amortize worker fan-out, small enough that a chunk's
// records (~15 per patient) stay a trivial memory footprint.
const streamChunk = 50_000

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	patients := flag.Int("patients", 10000, "population size (must be > 0)")
	seed := flag.Int64("seed", 42, "generator seed; equal seeds reproduce identical extracts")
	out := flag.String("out", "data", "output directory")
	stream := flag.Bool("stream", false, "generate in constant memory, writing chunk by chunk (same bytes as the default mode)")
	appendRounds := flag.Int("append", 0, "also emit N follow-on append-round bundles (append-001/, append-002/, …), keyed off the same seed")
	appendNew := flag.Int("append-new", -1, "new patients per append round (default patients/20; 0 for events-only rounds)")
	flag.Parse()

	if *patients <= 0 {
		log.Fatalf("-patients must be > 0 (got %d)", *patients)
	}
	if *appendRounds < 0 {
		log.Fatalf("-append must be >= 0 (got %d)", *appendRounds)
	}

	cfg := synth.DefaultConfig(*patients)
	cfg.Seed = *seed

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	if *stream {
		writeStreamed(cfg, *out)
	} else {
		bundle := synth.Generate(cfg)
		fmt.Printf("writing %d patients (%d records) to %s\n", *patients, bundle.TotalRecords(), *out)
		writeBundle(*out, bundle)
	}

	// Follow-on rounds: each is a self-contained bundle directory a live
	// workbench can ingest (cohortctl ingest / POST /api/ingest), with new
	// persons stacked past everything earlier rounds added. The feed is a
	// pure function of (seed, patients, round), so re-running datagen
	// reproduces it exactly.
	perRound := *appendNew
	if perRound < 0 {
		perRound = *patients / 20
	}
	for round := 1; round <= *appendRounds; round++ {
		firstNew := uint64(*patients + (round-1)*perRound + 1)
		lastNew := uint64(*patients + round*perRound)
		b := synth.GenerateAppend(cfg, firstNew, lastNew, round)
		dir := filepath.Join(*out, fmt.Sprintf("append-%03d", round))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("writing append round %d (%d new patients, %d records) to %s\n",
			round, perRound, b.TotalRecords(), dir)
		writeBundle(dir, b)
	}
}

// writeBundle materializes one bundle as the seven extract files.
func writeBundle(dir string, bundle *sources.Bundle) {
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("  %-24s %8.1f KiB\n", name, float64(info.Size())/1024)
	}
	write("persons.csv", func(f *os.File) error { return sources.WritePersons(f, bundle.Persons) })
	write("gp_claims.csv", func(f *os.File) error { return sources.WriteGPClaims(f, bundle.GPClaims) })
	write("episodes.csv", func(f *os.File) error { return sources.WriteEpisodes(f, bundle.Episodes) })
	write("municipal.csv", func(f *os.File) error { return sources.WriteMunicipal(f, bundle.Municipal) })
	write("prescriptions.jsonl", func(f *os.File) error { return sources.WriteJSONL(f, bundle.Prescriptions) })
	write("specialist.jsonl", func(f *os.File) error { return sources.WriteJSONL(f, bundle.Specialist) })
	write("physio.jsonl", func(f *os.File) error { return sources.WriteJSONL(f, bundle.Physio) })
}

// writeStreamed generates the population in streamChunk-patient ranges and
// appends each chunk's records to the seven open extract files. Peak
// memory is one chunk's bundle, independent of -patients.
func writeStreamed(cfg synth.Config, dir string) {
	create := func(name string) *os.File {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	files := make([]*os.File, 0, 7)
	open := func(name string) *os.File {
		f := create(name)
		files = append(files, f)
		return f
	}

	personsF := open("persons.csv")
	gpF := open("gp_claims.csv")
	episodesF := open("episodes.csv")
	municipalF := open("municipal.csv")
	rxF := open("prescriptions.jsonl")
	specialistF := open("specialist.jsonl")
	physioF := open("physio.jsonl")

	check := func(what string, err error) {
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
	}
	persons, err := sources.NewPersonStream(personsF)
	check("persons.csv", err)
	gp, err := sources.NewGPClaimStream(gpF)
	check("gp_claims.csv", err)
	episodes, err := sources.NewEpisodeStream(episodesF)
	check("episodes.csv", err)
	municipal, err := sources.NewMunicipalStream(municipalF)
	check("municipal.csv", err)
	rx := sources.NewJSONLStream[sources.Prescription](rxF)
	specialist := sources.NewJSONLStream[sources.SpecialistClaim](specialistF)
	physio := sources.NewJSONLStream[sources.PhysioClaim](physioF)

	fmt.Printf("streaming %d patients to %s (chunks of %d)\n", cfg.Patients, dir, streamChunk)
	records := 0
	for first := uint64(1); first <= uint64(cfg.Patients); first += streamChunk {
		last := first + streamChunk - 1
		if last > uint64(cfg.Patients) {
			last = uint64(cfg.Patients)
		}
		chunk := synth.GenerateRange(cfg, first, last)
		records += chunk.TotalRecords()
		check("persons.csv", persons.Append(chunk.Persons))
		check("gp_claims.csv", gp.Append(chunk.GPClaims))
		check("episodes.csv", episodes.Append(chunk.Episodes))
		check("municipal.csv", municipal.Append(chunk.Municipal))
		check("prescriptions.jsonl", rx.Append(chunk.Prescriptions))
		check("specialist.jsonl", specialist.Append(chunk.Specialist))
		check("physio.jsonl", physio.Append(chunk.Physio))
		fmt.Printf("  patients %d-%d done (%d records so far)\n", first, last, records)
	}

	for _, f := range files {
		name := filepath.Base(f.Name())
		check(name, f.Close())
		info, err := os.Stat(filepath.Join(dir, name))
		check(name, err)
		fmt.Printf("  %-24s %8.1f KiB\n", name, float64(info.Size())/1024)
	}
}
