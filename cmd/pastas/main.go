// Command pastas renders the workbench views as SVG: the Fig. 1 timeline
// (calendar or aligned), the Fig. 2 NSEPter merged graph, and the Fig. 3
// preattentive stimulus.
//
// Usage:
//
//	pastas -synth 2000 -view workbench -rows 100 -out fig1.svg
//	pastas -synth 2000 -view graph -pattern T90 -depth 2 -out fig2a.svg
//	pastas -view preattentive -out fig3.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pastas/internal/align"
	"pastas/internal/core"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pastas: ")

	synthN := flag.Int("synth", 2000, "synthetic population size")
	view := flag.String("view", "workbench", "view: workbench | aligned | graph | graph-msa | eventchart | preattentive")
	rows := flag.Int("rows", 100, "max histories to draw")
	pattern := flag.String("pattern", "T90", "merge/alignment code pattern")
	depth := flag.Int("depth", 2, "neighbour merge recursion depth")
	zoomX := flag.Float64("zoomx", 1, "horizontal zoom slider")
	zoomY := flag.Float64("zoomy", 1, "vertical zoom slider")
	out := flag.String("out", "view.svg", "output SVG path")
	flag.Parse()

	var svg string
	switch *view {
	case "preattentive":
		svg, _ = render.PreattentiveStimulus(render.StimulusOptions{Distractors: 48, Seed: 3})
	default:
		wb, err := core.Synthesize(synth.DefaultConfig(*synthN))
		if err != nil {
			log.Fatal(err)
		}
		sess := mustSession(wb)
		diagPred := query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", *pattern)}
		if err := sess.Extract(query.Has{Pred: diagPred}); err != nil {
			log.Fatal(err)
		}
		if err := sess.SetZoom(*zoomX, *zoomY); err != nil {
			log.Fatal(err)
		}
		switch *view {
		case "workbench":
			svg = sess.RenderTimeline(render.TimelineOptions{MaxRows: *rows, Legend: true, Tooltips: true})
		case "aligned":
			if err := sess.AlignOn(align.First(diagPred)); err != nil {
				log.Fatal(err)
			}
			svg = sess.RenderTimeline(render.TimelineOptions{MaxRows: *rows, Tooltips: true})
		case "graph":
			svg, err = sess.RenderGraph(*pattern, *depth, render.GraphOptions{Labels: true})
			if err != nil {
				log.Fatal(err)
			}
		case "graph-msa":
			svg = sess.RenderGraphMSA(render.GraphOptions{Labels: true})
		case "eventchart":
			// Hits of "index diagnosis then a GP follow-up within 90
			// days" — the Fails et al. temporal-query view.
			seq := query.Sequence{Steps: []query.Step{
				{Pred: diagPred},
				{Pred: query.AllOf{
					query.TypeIs(model.TypeContact),
					query.SourceIs(model.SourceGP),
				}, MaxGap: query.Days(90)},
			}}
			svg = sess.RenderEventChart(seq, render.EventChartOptions{Tooltips: true, MaxLines: *rows})
		default:
			log.Fatalf("unknown view %q", *view)
		}
		fmt.Println(sess.Budget().String())
	}

	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d KiB)\n", *out, len(svg)/1024)
}

// mustSession opens a session; the workbench here is always store-backed.
func mustSession(wb *core.Workbench) *core.Session {
	s, err := core.NewSession(wb)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
