// Command loadgen drives concurrent mixed sessions — cohort queries,
// patient timeline fetches and indicator aggregations — against a
// workbench and reports per-class latency percentiles, throughput and
// error rates. It is the load half of the failover experiments: point
// it at a replicated shard topology, kill and restart servers
// underneath it, and read a p99 instead of an outage.
//
// Usage:
//
//	loadgen -synth 21000 -c 8 -d 10s
//	loadgen -shards "h1:7070|h2:7070,h3:7070|h4:7070" -c 16 -d 60s
//	loadgen -shards h1:7070 -degraded -json
//
// Replica groups use the same "a|b" syntax as cohortctl -shards: the
// members of a group serve the same shards and fail over transparently.
// With -degraded the run keeps going when whole shards are unreachable,
// counting incomplete answers instead of errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		shardAddrs = flag.String("shards", "", "comma-separated shard server addresses; replica groups as \"a|b\"")
		synthN     = flag.Int("synth", 21000, "synthesize N patients when no -shards is given")
		workers    = flag.Int("c", 8, "concurrent session workers")
		duration   = flag.Duration("d", 10*time.Second, "run duration")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-RPC timeout for remote topologies")
		degraded   = flag.Bool("degraded", false, "serve partial answers when shards are unreachable (count them, don't fail)")
		jsonOut    = flag.Bool("json", false, "emit the summary as JSON on stdout")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
	)
	flag.Parse()

	wb, err := buildWorkbench(*shardAddrs, *synthN, *timeout, *degraded)
	if err != nil {
		log.Fatal(err)
	}
	defer wb.Close()

	ids, cohortBits, err := primeWorkload(wb)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d patients, %d shards; %d workers for %s",
		wb.Patients(), wb.Engine.NumShards(), *workers, *duration)

	results := run(wb, ids, cohortBits, *workers, *duration, *seed)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
		return
	}
	results.print(os.Stdout)
}

func buildWorkbench(shardAddrs string, synthN int, timeout time.Duration, degraded bool) (*core.Workbench, error) {
	if shardAddrs != "" {
		opts := engine.DefaultOptions()
		opts.CacheSize = 0 // a load generator must generate load, not cache hits
		if degraded {
			opts.Policy = engine.PolicyDegraded
		}
		window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
		return core.Connect(strings.Split(shardAddrs, ","), engine.RemoteOptions{Timeout: timeout}, opts, window)
	}
	wb, err := core.Synthesize(synth.DefaultConfig(synthN))
	if err != nil {
		return nil, err
	}
	wb.Engine.ResetCache()
	return wb, nil
}

// analyticsCohort is the saved cohort the analytics class mines over,
// materialized once at priming time.
const analyticsCohort = "lg-analytics"

// primeWorkload resolves the fixed inputs every session reuses: a pool
// of patient IDs for timeline fetches, a cohort bitset for indicator
// aggregations, and a saved cohort for the analytics class. Priming goes
// through the engine, so it works over any transport.
func primeWorkload(wb *core.Workbench) ([]model.PatientID, *store.Bitset, error) {
	ids, err := wb.Engine.Select(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	if err != nil {
		return nil, nil, fmt.Errorf("priming timeline pool: %w", err)
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no patients with diagnoses to fetch timelines for")
	}
	if len(ids) > 4096 {
		ids = ids[:4096]
	}
	bits, err := wb.Query(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	if err != nil {
		return nil, nil, fmt.Errorf("priming indicator cohort: %w", err)
	}
	if _, err := wb.SaveCohort(analyticsCohort, sessionExprs[0]); err != nil {
		return nil, nil, fmt.Errorf("priming analytics cohort: %w", err)
	}
	return ids, bits, nil
}

// opClass indexes the five session operations.
const (
	opQuery = iota
	opTimeline
	opIndicators
	opRefine
	opAnalytics
	numClasses
)

var classNames = [numClasses]string{"query", "timeline", "indicators", "refine", "analytics"}

// sessionExprs is the rotating cohort workload — index-friendly,
// scan-forcing and demographic shapes, so shard servers see the same
// operation mix the paper's workbench issues.
var sessionExprs = []query.Expr{
	query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}},
	query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
	query.And{
		query.SexIs(model.SexFemale),
		query.Has{Pred: query.TypeIs(model.TypeMedication)},
	},
}

type sample struct {
	class int
	d     time.Duration
	err   bool
}

// classSummary is one op class's aggregate, and Summary the whole run's.
type classSummary struct {
	Ops    int     `json:"ops"`
	Errors int     `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
}

type Summary struct {
	Seconds    float64                 `json:"seconds"`
	Workers    int                     `json:"workers"`
	Throughput float64                 `json:"ops_per_sec"`
	Incomplete int                     `json:"incomplete_answers"`
	Classes    map[string]classSummary `json:"classes"`
	Total      classSummary            `json:"total"`
}

func run(wb *core.Workbench, ids []model.PatientID, cohortBits *store.Bitset, workers int, d time.Duration, seed int64) *Summary {
	var (
		mu         sync.Mutex
		samples    []sample
		incomplete int
	)
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(w)))
			var local []sample
			localIncomplete := 0
			for i := 0; time.Now().Before(deadline); i++ {
				class := pickClass(r)
				t0 := time.Now()
				status, err := doOp(wb, class, r, ids, cohortBits, fmt.Sprintf("lg-%d-%d", w, i))
				local = append(local, sample{class: class, d: time.Since(t0), err: err != nil})
				if !status.Complete() {
					localIncomplete++
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			incomplete += localIncomplete
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return summarize(samples, workers, d, incomplete)
}

// pickClass weights the mix: cohort queries lead, then timelines, with
// indicator aggregations, full refine sessions (save → narrow ×3 →
// compare) and cohort analytics (distributed rule mining and episode
// tallies) rounding out a workbench session's rhythm.
func pickClass(r *rand.Rand) int {
	switch n := r.Intn(9); {
	case n < 3:
		return opQuery
	case n < 5:
		return opTimeline
	case n < 6:
		return opIndicators
	case n < 8:
		return opRefine
	default:
		return opAnalytics
	}
}

func doOp(wb *core.Workbench, class int, r *rand.Rand, ids []model.PatientID, cohortBits *store.Bitset, name string) (engine.QueryStatus, error) {
	switch class {
	case opQuery:
		_, status, err := wb.QueryStatus(sessionExprs[r.Intn(len(sessionExprs))])
		return status, err
	case opTimeline:
		_, err := wb.History(ids[r.Intn(len(ids))])
		return engine.QueryStatus{}, err
	case opRefine:
		return doRefineSession(wb, name)
	case opAnalytics:
		// The map step runs where the histories live; only fixed-size
		// partials cross the wire, whatever the cohort size.
		if r.Intn(2) == 0 {
			_, _, status, err := wb.MineRules(analyticsCohort,
				engine.MineParams{System: "ICPC2", Chapter: true}, mining.Options{})
			return status, err
		}
		_, _, status, err := wb.Episodes(analyticsCohort, 90*model.Day)
		return status, err
	default:
		_, status, err := wb.IndicatorsStatus(cohortBits)
		return status, err
	}
}

// refineNarrowers are applied one at a time on top of the session's base
// expression — each step is base ∧ (narrowers so far), which the engine
// recognizes and answers from the previously saved cohort plus the new
// conjunct only.
var refineNarrowers = []query.Expr{
	query.SexIs(model.SexFemale),
	query.Has{Pred: query.TypeIs(model.TypeMedication)},
	query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
}

// doRefineSession runs one full explore loop under a session-unique name:
// save a base cohort, narrow it three times (each refinement seeded by
// the previous save), compare first against last, then drop the
// session's cohorts. Materialization is strict by design, so with shards
// down the save step fails with an unavailability error — counted as an
// incomplete answer, like a degraded query, not as a load-generator
// error.
func doRefineSession(wb *core.Workbench, name string) (engine.QueryStatus, error) {
	incomplete := func(err error) (engine.QueryStatus, error) {
		if engine.IsUnavailable(err) {
			return engine.QueryStatus{MissingShards: []int{-1}}, nil
		}
		return engine.QueryStatus{}, err
	}
	names := []string{name + "-base"}
	defer func() {
		for _, n := range names {
			wb.DropCohort(n)
		}
	}()
	base := query.Expr(sessionExprs[0])
	if _, err := wb.SaveCohort(names[0], base); err != nil {
		return incomplete(err)
	}
	conj := []query.Expr{base}
	for j, n := range refineNarrowers {
		conj = append(conj, n)
		step := fmt.Sprintf("%s-n%d", name, j)
		names = append(names, step)
		if _, _, err := wb.RefineCohort(step, query.And(append([]query.Expr(nil), conj...))); err != nil {
			return incomplete(err)
		}
	}
	if _, err := wb.CompareCohorts(names[0], names[len(names)-1]); err != nil {
		return incomplete(err)
	}
	return engine.QueryStatus{}, nil
}

func summarize(samples []sample, workers int, d time.Duration, incomplete int) *Summary {
	s := &Summary{
		Seconds:    d.Seconds(),
		Workers:    workers,
		Incomplete: incomplete,
		Classes:    map[string]classSummary{},
	}
	perClass := make([][]time.Duration, numClasses)
	errs := make([]int, numClasses)
	var all []time.Duration
	totalErrs := 0
	for _, sm := range samples {
		if sm.err {
			errs[sm.class]++
			totalErrs++
			continue
		}
		perClass[sm.class] = append(perClass[sm.class], sm.d)
		all = append(all, sm.d)
	}
	for c := 0; c < numClasses; c++ {
		s.Classes[classNames[c]] = summarizeClass(perClass[c], errs[c])
	}
	s.Total = summarizeClass(all, totalErrs)
	s.Throughput = float64(s.Total.Ops) / d.Seconds()
	return s
}

func summarizeClass(lat []time.Duration, errs int) classSummary {
	cs := classSummary{Ops: len(lat) + errs, Errors: errs}
	if len(lat) == 0 {
		return cs
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		return float64(lat[int(p*float64(len(lat)-1))].Microseconds()) / 1000.0
	}
	cs.P50ms, cs.P95ms, cs.P99ms = pct(0.50), pct(0.95), pct(0.99)
	return cs
}

func (s *Summary) print(w *os.File) {
	fmt.Fprintf(w, "%-12s %8s %8s %9s %9s %9s\n", "class", "ops", "errors", "p50", "p95", "p99")
	for c := 0; c < numClasses; c++ {
		cs := s.Classes[classNames[c]]
		fmt.Fprintf(w, "%-12s %8d %8d %8.2fms %8.2fms %8.2fms\n",
			classNames[c], cs.Ops, cs.Errors, cs.P50ms, cs.P95ms, cs.P99ms)
	}
	fmt.Fprintf(w, "%-12s %8d %8d %8.2fms %8.2fms %8.2fms\n",
		"total", s.Total.Ops, s.Total.Errors, s.Total.P50ms, s.Total.P95ms, s.Total.P99ms)
	fmt.Fprintf(w, "throughput %.0f ops/s over %.1fs with %d workers\n",
		s.Throughput, s.Seconds, s.Workers)
	if s.Incomplete > 0 {
		fmt.Fprintf(w, "incomplete answers: %d (degraded mode)\n", s.Incomplete)
	}
}
