// Command timeline-server runs the personal-timeline web service — the
// paper's pastas.no deployment: interactive personal health timelines plus
// the cohort-query API, behind the sample password.
//
// Usage:
//
//	timeline-server -synth 10000 -addr :8080 -password tromsø
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"pastas/internal/core"
	"pastas/internal/synth"
	"pastas/internal/webapp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("timeline-server: ")

	synthN := flag.Int("synth", 10000, "synthetic population size")
	addr := flag.String("addr", ":8080", "listen address")
	password := flag.String("password", "tromsø", "sample password ('' = open)")
	flag.Parse()

	wb, err := core.Synthesize(synth.DefaultConfig(*synthN))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients (%d entries)\n", wb.Patients(), wb.Entries())
	fmt.Printf("serving on %s — try /timeline?patient=1&pw=%s\n", *addr, *password)

	srv := webapp.NewServer(wb, webapp.Config{Password: *password, MaxCohortSample: 100})
	log.Fatal(http.ListenAndServe(*addr, srv))
}
