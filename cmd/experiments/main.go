// Command experiments runs the full paper-reproduction suite and prints the
// measured-vs-paper report (the content of EXPERIMENTS.md), writing figure
// artifacts alongside.
//
// Usage:
//
//	experiments -population 168000 -out out
//	experiments -quick -population 8000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pastas/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	population := flag.Int("population", 168000, "synthetic population size (paper: 168000)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "out", "artifact directory ('' = skip)")
	quick := flag.Bool("quick", false, "reduced trial counts")
	mdPath := flag.String("md", "", "also write the run record as Markdown to this path")
	flag.Parse()

	start := time.Now()
	suite, err := experiments.NewSuite(experiments.Config{
		Population: *population,
		Seed:       *seed,
		OutDir:     *out,
		Quick:      *quick,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population %d built in %v (%d entries)\n\n",
		suite.WB.Patients(), suite.BuildTime.Round(time.Millisecond), suite.WB.Entries())

	results, err := suite.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	pass := 0
	for _, r := range results {
		fmt.Println(r.Format())
		if r.Pass {
			pass++
		}
	}
	fmt.Printf("—— %d/%d experiments shape-consistent with the paper; total %v ——\n",
		pass, len(results), time.Since(start).Round(time.Second))

	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteReport(f, suite, results, time.Since(start)); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run record written to %s\n", *mdPath)
	}
}
