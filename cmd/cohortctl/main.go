// Command cohortctl runs cohort queries against a registry extract: the
// command-line face of the Query-Builder. Queries are the JSON trees the
// builder produces (see internal/query.Spec); the built-in "study" query is
// the paper's predefined-characteristics selection.
//
// Usage:
//
//	cohortctl -data ./data -query query.json
//	cohortctl -synth 168000 -study
//	cohortctl -snapshot wb.snap -study
//	cohortctl -shards 10.0.0.1:7070,10.0.0.2:7070 -study
//	cohortctl -shards "10.0.0.1:7070|10.0.1.1:7070,10.0.0.2:7070|10.0.1.2:7070" -study
//	cohortctl -shards 10.0.0.1:7070,10.0.0.2:7070 -timeline 4711
//	cohortctl explain -synth 168000 -query query.json
//	cohortctl snapshot save -synth 168000 -out wb.snap -shards 16
//	cohortctl snapshot info -in wb.snap
//	cohortctl shard-server -snapshot wb.snap -serve 0,1 -listen :7070
//	cohortctl ingest -snapshot wb.snap -feed data/append-001,data/append-002 -compact -out wb2.snap
//	cohortctl cohort save -snapshot wb.snap -name diabetics -query q.json
//	cohortctl cohort list -snapshot wb.snap
//	cohortctl cohort refine -snapshot wb.snap -name dm-elderly -query q2.json
//	cohortctl cohort compare -snapshot wb.snap -a diabetics -b dm-elderly
//
// The explain subcommand prints the cost-annotated plan (estimated rows
// and cost per node, in execution order), then runs the query and reports
// the actual cohort size and wall time next to the estimate. The snapshot
// subcommands persist an integrated workbench as a sharded snapshot and
// inspect a snapshot's header without decoding it. The ingest subcommand
// exercises the live-ingest path: it appends follow-on bundle directories
// to a loaded workbench, optionally compacts, and can save the result.
//
// shard-server serves one or more shards of a sharded v2 snapshot over
// the wire protocol, paging in only the assigned segments; the top-level
// -shards flag connects a client to a set of such servers, whose shards
// together must cover the snapshot, and runs queries across them with
// bit-identical results to a local run. History-level operations work
// over -shards too: -timeline fetches the patient's history from its
// shard and renders it, -indicators aggregates server-side. The server
// shuts down gracefully on SIGINT/SIGTERM (listener closed, in-flight
// RPCs drained).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pastas/internal/cohort"
	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/integrate"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/sources"
	"pastas/internal/store"
	"pastas/internal/synth"
	"pastas/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cohortctl: ")

	args := os.Args[1:]
	if len(args) > 0 && args[0] == "snapshot" {
		runSnapshotCmd(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "shard-server" {
		runShardServer(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "ingest" {
		runIngest(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "cohort" {
		runCohortCmd(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "analyze" {
		runAnalyze(args[1:])
		return
	}
	explainMode := len(args) > 0 && args[0] == "explain"
	if explainMode {
		args = args[1:]
	}

	fs := flag.NewFlagSet("cohortctl", flag.ExitOnError)
	dataDir := fs.String("data", "", "registry extract directory (from datagen)")
	synthN := fs.Int("synth", 0, "generate a synthetic population of this size instead")
	snapshotFile := fs.String("snapshot", "", "reopen a saved snapshot instead of ingesting")
	shardAddrs := fs.String("shards", "", "comma-separated shard-server addresses to query across; \"a|b\" groups replicas serving the same shards")
	degraded := fs.Bool("degraded", false, "with -shards: answer over reachable shards when some are down, reporting which are missing (default: any down shard is an error)")
	queryFile := fs.String("query", "", "JSON query-spec file")
	study := fs.Bool("study", false, "run the paper's predefined-characteristics selection")
	limit := fs.Int("limit", 20, "IDs to print")
	indicators := fs.Bool("indicators", false, "print utilization indicators for the cohort")
	timelineID := fs.Uint64("timeline", 0, "render this patient's timeline as SVG on stdout (works over -shards)")
	fs.Parse(args) // ExitOnError: parse failures exit(2) with usage

	wb, window, err := loadWorkbench(*dataDir, *synthN, *snapshotFile, *shardAddrs, *degraded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients, %d entries\n", wb.Patients(), wb.Entries())

	if *timelineID != 0 {
		// History-level output: the fetch RPC pages the one history in
		// from its shard server when running against -shards, so the SVG
		// is byte-identical to a local render of the same snapshot.
		h, err := wb.History(model.PatientID(*timelineID))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(render.Timeline(model.MustCollection(h), render.TimelineOptions{
			Width: 1000, Height: 220, ZoomY: 5, Tooltips: true, Legend: true,
		}))
		return
	}

	var expr query.Expr
	switch {
	case *study:
		expr = cohort.StudyCriteria(window)
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := query.ParseSpec(data)
		if err != nil {
			log.Fatal(err)
		}
		expr, err = spec.Compile()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -query FILE or -study")
	}

	if explainMode {
		runExplain(wb, expr)
		return
	}

	// Evaluate through the engine directly: the same path works over a
	// local store and over remote shard backends.
	bits, status, err := wb.QueryStatus(expr)
	if err != nil {
		log.Fatal(err)
	}
	// Degradation warnings go to stderr: stdout stays byte-comparable
	// between a degraded run and a healthy one over the same shards.
	warnIncomplete(wb, status)
	count := bits.Count()
	fmt.Printf("query: %s\n", expr)
	fmt.Printf("cohort: %d of %d patients (%.2f%%)\n",
		count, wb.Patients(), 100*float64(count)/float64(wb.Patients()))
	// Resolve only the IDs that will be printed; the -shards path ships
	// them over the wire, so a huge cohort must not be materialized to
	// show -limit of them.
	ids, err := wb.Engine.IDsOf(bits.FirstN(*limit))
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range ids {
		fmt.Printf("  %s\n", id)
	}
	if count > *limit {
		fmt.Printf("  … and %d more\n", count-*limit)
	}

	if *indicators {
		// Aggregates where the histories live: per-shard tallies merged
		// exactly, so -shards prints the same table a local run would.
		ind, istatus, err := wb.IndicatorsStatus(bits)
		if err != nil {
			log.Fatal(err)
		}
		warnIncomplete(wb, istatus)
		fmt.Println()
		fmt.Print(ind.Table())
	}
}

// runExplain prints the cost-annotated plan, then executes it and shows
// the estimate next to reality.
func runExplain(wb *core.Workbench, expr query.Expr) {
	fmt.Printf("query: %s\n\n", expr)
	ex, err := wb.Engine.Explain(expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex)
	if ex.Seed == nil {
		if cs := wb.Cohorts(); len(cs) > 0 {
			fmt.Printf("no saved cohort seeds this plan (%d in the workspace; a refine would run from scratch)\n", len(cs))
		}
	}

	t0 := time.Now()
	bits, err := wb.Engine.Execute(expr)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	fmt.Printf("\nactual: %d patients in %s (estimated %.0f rows)\n",
		bits.Count(), elapsed.Round(time.Microsecond), ex.Root.Est.Rows)
	if budget := 100 * time.Millisecond; elapsed > budget {
		fmt.Printf("over the %s interactive budget\n", budget)
	}
}

// warnIncomplete reports a degraded answer's missing shards on stderr —
// loudly, but out of stdout so result pipelines stay comparable.
func warnIncomplete(wb *core.Workbench, status engine.QueryStatus) {
	if status.Complete() {
		return
	}
	mask := status.IncompleteMask(wb.Engine.NumShards())
	log.Printf("warning: %s (incomplete mask %v)", status, mask.Ones())
}

func loadWorkbench(dataDir string, synthN int, snapshotFile, shardAddrs string, degraded bool) (*core.Workbench, model.Period, error) {
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	switch {
	case shardAddrs != "":
		addrs := strings.Split(shardAddrs, ",")
		opts := engine.DefaultOptions()
		if degraded {
			opts.Policy = engine.PolicyDegraded
		}
		t0 := time.Now()
		wb, err := core.Connect(addrs, engine.RemoteOptions{}, opts, window)
		if err != nil {
			return nil, window, err
		}
		fmt.Printf("connected to %d shards on %d servers in %s\n",
			wb.Engine.NumShards(), len(addrs), time.Since(t0).Round(time.Millisecond))
		return wb, window, nil
	case snapshotFile != "":
		f, err := os.Open(snapshotFile)
		if err != nil {
			return nil, window, err
		}
		defer f.Close()
		t0 := time.Now()
		wb, err := core.Open(f, window)
		if err != nil {
			return nil, window, err
		}
		fmt.Printf("reopened %s snapshot (%d shards) in %s\n",
			wb.Snapshot.Format(), wb.Snapshot.Shards, time.Since(t0).Round(time.Millisecond))
		return wb, window, nil
	case dataDir != "":
		bundle, err := sources.ReadDir(dataDir)
		if err != nil {
			return nil, window, err
		}
		wb, err := core.FromBundle(bundle, integrate.DefaultOptions(), window)
		return wb, window, err
	case synthN > 0:
		cfg := synth.DefaultConfig(synthN)
		wb, err := core.Synthesize(cfg)
		return wb, cfg.Window(), err
	default:
		return nil, window, fmt.Errorf("need -data DIR, -synth N, -snapshot FILE or -shards ADDRS")
	}
}

// runShardServer serves shards of a sharded snapshot over the wire
// protocol until killed.
func runShardServer(args []string) {
	fs := flag.NewFlagSet("cohortctl shard-server", flag.ExitOnError)
	snapshot := fs.String("snapshot", "", "sharded v2 snapshot file to serve from")
	serve := fs.String("serve", "", "comma-separated shard ids to serve (empty = all)")
	listen := fs.String("listen", "127.0.0.1:7070", "address to listen on")
	fs.Parse(args)
	if *snapshot == "" {
		log.Fatal("need -snapshot FILE")
	}
	var ids []int
	if *serve != "" {
		for _, part := range strings.Split(*serve, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad shard id %q", part)
			}
			ids = append(ids, id)
		}
	}
	t0 := time.Now()
	srv, err := engine.NewShardServer(*snapshot, ids, engine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	patients, entries := 0, 0
	for _, m := range srv.Metas() {
		patients += m.Patients
		entries += m.Entries
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d shards (%d patients, %d entries) from %s on %s (loaded in %s)\n",
		len(srv.Metas()), patients, entries, *snapshot, lis.Addr(), time.Since(t0).Round(time.Millisecond))

	// Graceful shutdown: SIGINT/SIGTERM closes the listener and drains
	// in-flight RPCs (their responses flush to the clients) instead of
	// dying mid-call — so supervisor teardown, Ctrl-C and the CI e2e
	// job's trap all leave clients with complete answers, never EOF
	// halfway through a bitset.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigs
		fmt.Printf("received %s, draining in-flight RPCs\n", sig)
		if err := srv.Shutdown(10 * time.Second); err != nil {
			log.Print(err)
		}
	}()
	if err := srv.Serve(lis); !errors.Is(err, engine.ErrServerClosed) {
		log.Fatal(err)
	}
	// Serve returns as soon as the listener closes; the drain may still
	// be flushing responses. Exit only after Shutdown finishes, or the
	// process teardown would sever the very calls it just waited for.
	<-drained
	fmt.Println("shard server stopped")
}

// runIngest loads a workbench locally, feeds it one or more append-round
// bundle directories (datagen -append emits them), and optionally folds
// the delta and re-saves the result as a snapshot — the command-line face
// of the live-ingest path.
func runIngest(args []string) {
	fs := flag.NewFlagSet("cohortctl ingest", flag.ExitOnError)
	dataDir := fs.String("data", "", "registry extract directory for the base load")
	synthN := fs.Int("synth", 0, "synthesize the base population instead")
	snapshotFile := fs.String("snapshot", "", "reopen a saved snapshot as the base")
	feed := fs.String("feed", "", "comma-separated bundle directories to append, in order")
	compact := fs.Bool("compact", false, "fold the delta into containerized postings after the feed")
	out := fs.String("out", "", "save the post-ingest workbench as a sharded snapshot")
	shards := fs.Int("shards", 0, "shard count for -out (0 = match the engine)")
	fs.Parse(args)
	if *feed == "" {
		log.Fatal("need -feed DIR[,DIR...]")
	}

	wb, _, err := loadWorkbench(*dataDir, *synthN, *snapshotFile, "", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients, %d entries\n", wb.Patients(), wb.Entries())

	for _, dir := range strings.Split(*feed, ",") {
		dir = strings.TrimSpace(dir)
		bundle, err := sources.ReadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := wb.Append(bundle); err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		st, _ := wb.IngestStats()
		fmt.Printf("appended %s: %d records in %s (generation %d, delta %d entries / %d patients)\n",
			dir, bundle.TotalRecords(), time.Since(t0).Round(time.Millisecond),
			st.Generation, st.DeltaEntries, st.DeltaPatients)
	}

	if *compact {
		stats, err := wb.Compact()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compacted %d entries / %d patients (%d lists) in %s\n",
			stats.LastEntries, stats.LastPatients, stats.LastLists,
			stats.LastDuration.Round(time.Millisecond))
	}

	rep := wb.IngestReport()
	fmt.Println(rep.String())
	st, _ := wb.IngestStats()
	fmt.Printf("now %d patients, %d entries (generation %d, %d batches, %d compactions)\n",
		wb.Patients(), wb.Entries(), st.Generation, st.Batches, st.Compactions)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		info, err := wb.Save(f, core.SnapshotOptions{Shards: *shards})
		if err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %s snapshot (%d shards) to %s\n", info.Format(), info.Shards, *out)
	}
}

// runCohortCmd dispatches the cohort workspace subcommands: save a named
// cohort into a snapshot's workspace, list a snapshot's cohorts, refine
// one incrementally (only the delta executes, masked by the saved
// bitset), and compare two cohorts' profiles. save and refine write the
// updated workspace back as a v5 snapshot (in place unless -out names a
// different file).
func runCohortCmd(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: cohortctl cohort save|list|refine|compare|drop [flags]")
	}
	sub := args[0]
	fs := flag.NewFlagSet("cohortctl cohort "+sub, flag.ExitOnError)
	snapshotFile := fs.String("snapshot", "", "snapshot file holding the workbench and its cohort workspace")
	dataDir := fs.String("data", "", "registry extract directory (instead of -snapshot; workspace starts empty)")
	synthN := fs.Int("synth", 0, "synthesize the population instead (workspace starts empty)")
	var name, queryFile, out, cohortA, cohortB *string
	switch sub {
	case "save", "refine":
		name = fs.String("name", "", "cohort name to save the result under")
		queryFile = fs.String("query", "", "JSON query-spec file")
		out = fs.String("out", "", "snapshot file to write the updated workspace to (default: -snapshot, in place)")
	case "drop":
		name = fs.String("name", "", "cohort name to drop")
		out = fs.String("out", "", "snapshot file to write the updated workspace to (default: -snapshot, in place)")
	case "compare":
		cohortA = fs.String("a", "", "first cohort name")
		cohortB = fs.String("b", "", "second cohort name")
	case "list":
	default:
		log.Fatalf("unknown cohort subcommand %q (want save, list, refine, compare or drop)", sub)
	}
	fs.Parse(args[1:])

	wb, _, err := loadWorkbench(*dataDir, *synthN, *snapshotFile, "", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients, %d entries, %d saved cohorts\n", wb.Patients(), wb.Entries(), len(wb.Cohorts()))

	persist := func() {
		path := ""
		if out != nil {
			path = *out
		}
		if path == "" {
			path = *snapshotFile
		}
		if path == "" {
			log.Print("warning: no -out and no -snapshot input; the workspace change was not persisted")
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		info, err := wb.Save(f, core.SnapshotOptions{})
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %s snapshot (%d shards, %d cohorts) to %s\n", info.Format(), info.Shards, info.Cohorts, path)
	}

	switch sub {
	case "save":
		if *name == "" || *queryFile == "" {
			log.Fatal("need -name NAME and -query FILE")
		}
		expr, err := loadQueryExpr(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		info, err := wb.SaveCohort(*name, expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cohort %q: %d of %d patients in %s (generation %d)\n",
			info.Name, info.Count, wb.Patients(), time.Since(t0).Round(time.Microsecond), info.Generation)
		persist()
	case "refine":
		if *name == "" || *queryFile == "" {
			log.Fatal("need -name NAME and -query FILE")
		}
		expr, err := loadQueryExpr(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		info, ref, err := wb.RefineCohort(*name, expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refinement: %s\n", ref)
		fmt.Printf("cohort %q: %d of %d patients in %s (generation %d)\n",
			info.Name, info.Count, wb.Patients(), time.Since(t0).Round(time.Microsecond), info.Generation)
		persist()
	case "list":
		cohorts := wb.Cohorts()
		if len(cohorts) == 0 {
			fmt.Println("no saved cohorts")
			return
		}
		for _, c := range cohorts {
			fmt.Printf("  %-24s %8d patients  generation %d  %s\n", c.Name, c.Count, c.Generation, c.Expr)
		}
	case "compare":
		if *cohortA == "" || *cohortB == "" {
			log.Fatal("need -a NAME and -b NAME")
		}
		cmp, err := wb.CompareCohorts(*cohortA, *cohortB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("overlap: %d in both, %d only in %q, %d only in %q\n\n",
			cmp.Both, cmp.OnlyA, cmp.A.Name, cmp.OnlyB, cmp.B.Name)
		fmt.Printf("── %s (%d patients) ──\n%s\n", cmp.A.Name, cmp.A.Count, cmp.ProfileA.Table())
		fmt.Printf("── %s (%d patients) ──\n%s", cmp.B.Name, cmp.B.Count, cmp.ProfileB.Table())
	case "drop":
		if *name == "" {
			log.Fatal("need -name NAME")
		}
		if !wb.DropCohort(*name) {
			log.Fatalf("no cohort %q", *name)
		}
		fmt.Printf("dropped cohort %q\n", *name)
		persist()
	}
}

// runAnalyze dispatches the cohort-analytics subcommands. Each runs one
// registered analytics kind over a cohort — a saved one named with
// -cohort, or an ad-hoc one defined by -query/-study — through the same
// map-reduce path whatever the topology, so stdout is byte-comparable
// between a -snapshot run and a -shards run over the same data. Load
// progress and degradation warnings go to stderr, results to stdout.
func runAnalyze(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: cohortctl analyze mine|episodes|scenario|cluster [flags]")
	}
	kind := args[0]
	fs := flag.NewFlagSet("cohortctl analyze "+kind, flag.ExitOnError)
	dataDir := fs.String("data", "", "registry extract directory (from datagen)")
	synthN := fs.Int("synth", 0, "generate a synthetic population of this size instead")
	snapshotFile := fs.String("snapshot", "", "reopen a saved snapshot instead of ingesting")
	shardAddrs := fs.String("shards", "", "comma-separated shard-server addresses to analyze across")
	degraded := fs.Bool("degraded", false, "with -shards: answer over reachable shards when some are down")
	cohortName := fs.String("cohort", "", "saved cohort to analyze")
	queryFile := fs.String("query", "", "JSON query-spec file defining an ad-hoc cohort")
	study := fs.Bool("study", false, "use the paper's predefined-characteristics selection as the cohort")
	gapDays := fs.Int("gap", 90, "episode gap in days (episodes, scenario)")

	var sequential, chapter *bool
	var maxGap, minCount, top, k *int
	var minSupport *float64
	var system, steps, relations *string
	switch kind {
	case "mine":
		sequential = fs.Bool("sequential", false, "mine A-then-B ordering rules instead of co-occurrence")
		maxGap = fs.Int("max-gap", 0, "max position distance for sequential pairs (0 = unbounded)")
		system = fs.String("system", "", "restrict to one coding system (e.g. ICPC2; empty = all)")
		chapter = fs.Bool("chapter", false, "mine over chapter labels instead of full codes")
		minSupport = fs.Float64("min-support", 0, "minimum support fraction (0 = default)")
		minCount = fs.Int("min-count", 0, "minimum absolute pair count (0 = default)")
		top = fs.Int("top", 20, "rules to print (0 = all)")
	case "episodes":
	case "scenario":
		steps = fs.String("steps", "", "comma-separated step labels (episode chapter labels)")
		relations = fs.String("relations", "", `pairwise constraints "i:j:rel[,rel...]" joined with ";" (e.g. "0:1:before;1:2:before,meets")`)
	case "cluster":
		k = fs.Int("k", 2, "number of clusters")
	default:
		log.Fatalf("unknown analyze subcommand %q (want mine, episodes, scenario or cluster)", kind)
	}
	fs.Parse(args[1:])

	wb, window, err := loadWorkbench(*dataDir, *synthN, *snapshotFile, *shardAddrs, *degraded)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d patients, %d entries, %d saved cohorts", wb.Patients(), wb.Entries(), len(wb.Cohorts()))

	name := *cohortName
	if name == "" {
		var expr query.Expr
		switch {
		case *study:
			expr = cohort.StudyCriteria(window)
		case *queryFile != "":
			if expr, err = loadQueryExpr(*queryFile); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal("need -cohort NAME, -query FILE or -study")
		}
		info, err := wb.SaveCohort("analyze-adhoc", expr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ad-hoc cohort: %d of %d patients", info.Count, wb.Patients())
		name = info.Name
	}

	gap := model.Time(*gapDays) * model.Day
	switch kind {
	case "mine":
		p := engine.MineParams{Sequential: *sequential, MaxGap: *maxGap, System: *system, Chapter: *chapter}
		opt := mining.Options{MinSupport: *minSupport, MinCount: *minCount, MaxGap: *maxGap}
		rules, info, status, err := wb.MineRules(name, p, opt)
		if err != nil {
			log.Fatal(err)
		}
		warnIncomplete(wb, status)
		if *top > 0 {
			rules = mining.Top(rules, *top)
		}
		fmt.Printf("cohort %q: %d patients\n", info.Name, info.Count)
		fmt.Printf("rules: %d\n", len(rules))
		for _, r := range rules {
			fmt.Printf("  %s\n", r)
		}
	case "episodes":
		tally, info, status, err := wb.Episodes(name, gap)
		if err != nil {
			log.Fatal(err)
		}
		warnIncomplete(wb, status)
		fmt.Printf("cohort %q: %d patients\n", info.Name, info.Count)
		fmt.Printf("histories: %d  with episodes: %d\n", tally.Histories, tally.WithEpisodes)
		fmt.Printf("episodes: %d over %d entries\n", tally.Episodes, tally.Entries)
		if tally.Episodes > 0 {
			fmt.Printf("mean entries/episode: %.2f  mean span: %.1f days\n",
				float64(tally.Entries)/float64(tally.Episodes),
				float64(tally.SpanTotal)/float64(tally.Episodes)/float64(model.Day))
		}
		keys := make([]string, 0, len(tally.ByDominant))
		for ch := range tally.ByDominant {
			keys = append(keys, ch)
		}
		sort.Strings(keys)
		for _, ch := range keys {
			fmt.Printf("  chapter %-4s %d episodes\n", ch, tally.ByDominant[ch])
		}
	case "scenario":
		sc, err := parseScenario(*steps, *relations)
		if err != nil {
			log.Fatal(err)
		}
		tally, info, status, err := wb.MatchScenario(name, gap, sc)
		if err != nil {
			log.Fatal(err)
		}
		warnIncomplete(wb, status)
		fmt.Printf("cohort %q: %d patients\n", info.Name, info.Count)
		fmt.Printf("histories: %d  bound: %d  matched: %d\n", tally.Histories, tally.Bound, tally.Matched)
		if tally.Histories > 0 {
			fmt.Printf("match rate: %.4f\n", float64(tally.Matched)/float64(tally.Histories))
		}
	case "cluster":
		clusters, info, err := wb.ClusterCohort(name, *k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cohort %q: %d patients (%d with diagnosis sequences)\n", info.Name, clusters.Histories, clusters.Clustered)
		fmt.Printf("silhouette: %.4f\n", clusters.Silhouette)
		for i, size := range clusters.Sizes {
			fmt.Printf("  cluster %d: %d members", i, size)
			show := clusters.Members[i]
			if len(show) > 8 {
				show = show[:8]
			}
			for _, id := range show {
				fmt.Printf(" %s", id)
			}
			if size > len(show) {
				fmt.Printf(" …")
			}
			fmt.Println()
		}
	}
}

// parseScenario compiles the CLI scenario flags: step labels plus
// "i:j:rel" constraints with temporal.ParseRel relation names.
func parseScenario(steps, relations string) (temporal.Scenario, error) {
	var sc temporal.Scenario
	if steps == "" {
		return sc, fmt.Errorf("need -steps LABEL[,LABEL...]")
	}
	for _, s := range strings.Split(steps, ",") {
		sc.Steps = append(sc.Steps, strings.TrimSpace(s))
	}
	if relations != "" {
		for _, part := range strings.Split(relations, ";") {
			fields := strings.SplitN(strings.TrimSpace(part), ":", 3)
			if len(fields) != 3 {
				return sc, fmt.Errorf("bad relation %q (want i:j:rel)", part)
			}
			i, err1 := strconv.Atoi(strings.TrimSpace(fields[0]))
			j, err2 := strconv.Atoi(strings.TrimSpace(fields[1]))
			if err1 != nil || err2 != nil {
				return sc, fmt.Errorf("bad relation %q (want i:j:rel)", part)
			}
			rel, err := temporal.ParseRel(fields[2])
			if err != nil {
				return sc, err
			}
			sc.Relations = append(sc.Relations, temporal.StepRel{I: i, J: j, Rel: rel})
		}
	}
	return sc, sc.Validate()
}

// loadQueryExpr reads and compiles a JSON query-spec file.
func loadQueryExpr(path string) (query.Expr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := query.ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return spec.Compile()
}

// runSnapshotCmd dispatches the snapshot save/info subcommands.
func runSnapshotCmd(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: cohortctl snapshot save|info [flags]")
	}
	switch args[0] {
	case "save":
		fs := flag.NewFlagSet("cohortctl snapshot save", flag.ExitOnError)
		dataDir := fs.String("data", "", "registry extract directory (from datagen)")
		synthN := fs.Int("synth", 0, "generate a synthetic population of this size instead")
		out := fs.String("out", "wb.snap", "output snapshot file")
		shards := fs.Int("shards", 0, "shard count (0 = engine default)")
		fs.Parse(args[1:])
		wb, _, err := loadWorkbench(*dataDir, *synthN, "", "", false)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		info, err := wb.Save(f, core.SnapshotOptions{Shards: *shards})
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %d patients, %d entries to %s: %s, %d shards, %d bytes in %s\n",
			info.Patients, info.Entries, *out, info.Format(), info.Shards,
			info.Bytes, time.Since(t0).Round(time.Millisecond))
	case "info":
		fs := flag.NewFlagSet("cohortctl snapshot info", flag.ExitOnError)
		in := fs.String("in", "", "snapshot file to inspect")
		fs.Parse(args[1:])
		path := *in
		if path == "" && fs.NArg() > 0 {
			path = fs.Arg(0)
		}
		if path == "" {
			log.Fatal("need -in FILE")
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		info, err := store.Inspect(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("format:   %s\n", info.Format())
		fmt.Printf("shards:   %d\n", info.Shards)
		fmt.Printf("patients: %d\n", info.Patients)
		fmt.Printf("entries:  %d\n", info.Entries)
		if info.Bytes > 0 {
			fmt.Printf("bytes:    %d\n", info.Bytes)
		}
		if info.Generation > 0 {
			fmt.Printf("ingest:   generation %d, %d compactions, delta at save: %d entries / %d patients\n",
				info.Generation, info.Compactions, info.DeltaEntries, info.DeltaPatients)
		}
		if info.Cohorts > 0 {
			fmt.Printf("cohorts:  %d (%d bytes, crc32c %08x)\n", info.Cohorts, info.CohortBytes, info.CohortChecksum)
		}
		for _, sh := range info.ShardDetail {
			fmt.Printf("  shard %d: offset %d, %d bytes, %d patients, %d entries, crc32c %08x\n",
				sh.Shard, sh.Offset, sh.Bytes, sh.Patients, sh.Entries, sh.Checksum)
		}
		if len(info.Postings) > 0 {
			var tb int64
			var tl, ta, tm, tr int
			fmt.Printf("postings (containerized indexes):\n")
			for _, pi := range info.Postings {
				fmt.Printf("  shard %d: %d bytes, %d lists (%d array / %d bitmap / %d run containers), crc32c %08x\n",
					pi.Shard, pi.Bytes, pi.Lists, pi.Arrays, pi.Bitmaps, pi.Runs, pi.Checksum)
				tb += pi.Bytes
				tl += pi.Lists
				ta += pi.Arrays
				tm += pi.Bitmaps
				tr += pi.Runs
			}
			fmt.Printf("  total:   %d bytes, %d lists (%d array / %d bitmap / %d run containers)\n",
				tb, tl, ta, tm, tr)
		}
	default:
		log.Fatalf("unknown snapshot subcommand %q (want save or info)", args[0])
	}
}
