// Command cohortctl runs cohort queries against a registry extract: the
// command-line face of the Query-Builder. Queries are the JSON trees the
// builder produces (see internal/query.Spec); the built-in "study" query is
// the paper's predefined-characteristics selection.
//
// Usage:
//
//	cohortctl -data ./data -query query.json
//	cohortctl -synth 168000 -study
//	cohortctl explain -synth 168000 -query query.json
//
// The explain subcommand prints the cost-annotated plan (estimated rows
// and cost per node, in execution order), then runs the query and reports
// the actual cohort size and wall time next to the estimate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pastas/internal/cohort"
	"pastas/internal/core"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/sources"
	"pastas/internal/stats"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cohortctl: ")

	args := os.Args[1:]
	explainMode := len(args) > 0 && args[0] == "explain"
	if explainMode {
		args = args[1:]
	}

	fs := flag.NewFlagSet("cohortctl", flag.ExitOnError)
	dataDir := fs.String("data", "", "registry extract directory (from datagen)")
	synthN := fs.Int("synth", 0, "generate a synthetic population of this size instead")
	queryFile := fs.String("query", "", "JSON query-spec file")
	study := fs.Bool("study", false, "run the paper's predefined-characteristics selection")
	limit := fs.Int("limit", 20, "IDs to print")
	indicators := fs.Bool("indicators", false, "print utilization indicators for the cohort")
	fs.Parse(args) // ExitOnError: parse failures exit(2) with usage

	wb, window, err := loadWorkbench(*dataDir, *synthN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients, %d entries\n", wb.Patients(), wb.Entries())

	var expr query.Expr
	switch {
	case *study:
		expr = cohort.StudyCriteria(window)
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := query.ParseSpec(data)
		if err != nil {
			log.Fatal(err)
		}
		expr, err = spec.Compile()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -query FILE or -study")
	}

	if explainMode {
		runExplain(wb, expr)
		return
	}

	c, err := cohort.FromEngine(wb.Engine, "query", expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", expr)
	fmt.Printf("cohort: %d of %d patients (%.2f%%)\n",
		c.Count(), wb.Patients(), 100*float64(c.Count())/float64(wb.Patients()))
	ids := c.IDs()
	if len(ids) > *limit {
		ids = ids[:*limit]
	}
	for _, id := range ids {
		fmt.Printf("  %s\n", id)
	}
	if c.Count() > *limit {
		fmt.Printf("  … and %d more\n", c.Count()-*limit)
	}

	if *indicators {
		fmt.Println()
		fmt.Print(stats.ComputeIndicators(c.Collection(), window).Table())
	}
}

// runExplain prints the cost-annotated plan, then executes it and shows
// the estimate next to reality.
func runExplain(wb *core.Workbench, expr query.Expr) {
	fmt.Printf("query: %s\n\n", expr)
	ex, err := wb.Engine.Explain(expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex)

	t0 := time.Now()
	bits, err := wb.Engine.Execute(expr)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	fmt.Printf("\nactual: %d patients in %s (estimated %.0f rows)\n",
		bits.Count(), elapsed.Round(time.Microsecond), ex.Root.Est.Rows)
	if budget := 100 * time.Millisecond; elapsed > budget {
		fmt.Printf("over the %s interactive budget\n", budget)
	}
}

func loadWorkbench(dataDir string, synthN int) (*core.Workbench, model.Period, error) {
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	switch {
	case dataDir != "":
		bundle, err := sources.ReadDir(dataDir)
		if err != nil {
			return nil, window, err
		}
		wb, err := core.FromBundle(bundle, integrate.DefaultOptions(), window)
		return wb, window, err
	case synthN > 0:
		cfg := synth.DefaultConfig(synthN)
		wb, err := core.Synthesize(cfg)
		return wb, cfg.Window(), err
	default:
		return nil, window, fmt.Errorf("need -data DIR or -synth N")
	}
}
