// Command cohortctl runs cohort queries against a registry extract: the
// command-line face of the Query-Builder. Queries are the JSON trees the
// builder produces (see internal/query.Spec); the built-in "study" query is
// the paper's predefined-characteristics selection.
//
// Usage:
//
//	cohortctl -data ./data -query query.json
//	cohortctl -synth 168000 -study
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pastas/internal/cohort"
	"pastas/internal/core"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/sources"
	"pastas/internal/stats"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cohortctl: ")

	dataDir := flag.String("data", "", "registry extract directory (from datagen)")
	synthN := flag.Int("synth", 0, "generate a synthetic population of this size instead")
	queryFile := flag.String("query", "", "JSON query-spec file")
	study := flag.Bool("study", false, "run the paper's predefined-characteristics selection")
	limit := flag.Int("limit", 20, "IDs to print")
	indicators := flag.Bool("indicators", false, "print utilization indicators for the cohort")
	flag.Parse()

	wb, window, err := loadWorkbench(*dataDir, *synthN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients, %d entries\n", wb.Patients(), wb.Entries())

	var expr query.Expr
	switch {
	case *study:
		expr = cohort.StudyCriteria(window)
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := query.ParseSpec(data)
		if err != nil {
			log.Fatal(err)
		}
		expr, err = spec.Compile()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -query FILE or -study")
	}

	c, err := cohort.FromEngine(wb.Engine, "query", expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", expr)
	fmt.Printf("cohort: %d of %d patients (%.2f%%)\n",
		c.Count(), wb.Patients(), 100*float64(c.Count())/float64(wb.Patients()))
	ids := c.IDs()
	if len(ids) > *limit {
		ids = ids[:*limit]
	}
	for _, id := range ids {
		fmt.Printf("  %s\n", id)
	}
	if c.Count() > *limit {
		fmt.Printf("  … and %d more\n", c.Count()-*limit)
	}

	if *indicators {
		fmt.Println()
		fmt.Print(stats.ComputeIndicators(c.Collection(), window).Table())
	}
}

func loadWorkbench(dataDir string, synthN int) (*core.Workbench, model.Period, error) {
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	switch {
	case dataDir != "":
		bundle, err := sources.ReadDir(dataDir)
		if err != nil {
			return nil, window, err
		}
		wb, err := core.FromBundle(bundle, integrate.DefaultOptions(), window)
		return wb, window, err
	case synthN > 0:
		cfg := synth.DefaultConfig(synthN)
		wb, err := core.Synthesize(cfg)
		return wb, cfg.Window(), err
	default:
		return nil, window, fmt.Errorf("need -data DIR or -synth N")
	}
}
