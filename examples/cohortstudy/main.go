// Cohortstudy: the paper's Section-IV research-project pipeline at 1/10
// scale — select patients by the predefined characteristics (the 168k→13k
// selection), describe the cohort, and run the recognition survey that
// produced the published 92% / 7% / 1% feedback.
package main

import (
	"fmt"
	"log"

	"pastas"
	"pastas/internal/stats"
)

func main() {
	log.SetFlags(0)

	const population = 16800 // 1/10 of the paper's data set
	wb, err := pastas.Synthesize(pastas.DefaultSynthConfig(population))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d patients, %d entries\n", wb.Patients(), wb.Entries())

	// The predefined-characteristics selection.
	study, err := pastas.NewCohort(wb, "study", pastas.StudyCriteria(wb.Window))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected: %d (%.2f%%) — paper: 13,000 of 168,000 (7.74%%)\n",
		study.Count(), 100*float64(study.Count())/float64(population))

	// Describe the cohort: contacts per patient.
	col := study.Collection()
	var contacts []float64
	for _, h := range col.Histories() {
		n := 0
		for i := range h.Entries {
			if h.Entries[i].Type == pastas.TypeContact {
				n++
			}
		}
		contacts = append(contacts, float64(n))
	}
	fmt.Printf("contacts per selected patient: median %.0f, p90 %.0f\n",
		stats.Median(contacts), stats.Quantile(contacts, 0.9))

	// The recognition survey.
	res := pastas.SimulateSurvey(col, pastas.DefaultSurveyParams())
	rec, notRem, wrong := res.Proportions()
	fmt.Printf("\nsurvey (paper: 92%% recognized, 7%% did not remember, 1%% all wrong):\n")
	fmt.Printf("  recognized:       %5.1f%%\n", 100*rec)
	fmt.Printf("  did not remember: %5.1f%%\n", 100*notRem)
	fmt.Printf("  everything wrong: %5.1f%%\n", 100*wrong)
}
