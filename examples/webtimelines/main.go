// Webtimelines: serve interactive personal health timelines for thousands
// of patients — the paper's pastas.no deployment ("interactive personal
// health time-lines for more than 10,000 individuals on the web", sample
// password "tromsø").
package main

import (
	"fmt"
	"log"
	"net/http"

	"pastas"
)

func main() {
	log.SetFlags(0)

	wb, err := pastas.Synthesize(pastas.DefaultSynthConfig(10000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients (%d entries)\n", wb.Patients(), wb.Entries())

	srv := pastas.NewWebServer(wb, pastas.DefaultWebConfig())
	fmt.Println("serving on http://localhost:8080")
	fmt.Println("  index:    http://localhost:8080/?pw=tromsø")
	fmt.Println("  timeline: http://localhost:8080/timeline?patient=1&pw=tromsø")
	fmt.Println("  API:      http://localhost:8080/api/timeline?patient=1&pw=tromsø")
	log.Fatal(http.ListenAndServe(":8080", srv))
}
