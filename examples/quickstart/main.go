// Quickstart: load a population, identify a cohort with the Query-Builder,
// align it on the index event, and render the workbench timeline — the
// paper's core loop in ~50 lines of public API.
package main

import (
	"fmt"
	"log"
	"os"

	"pastas"
)

func main() {
	log.SetFlags(0)

	// 1. Load. (Real deployments integrate registry extracts via
	//    pastas.FromBundle; here we synthesize a small population.)
	wb, err := pastas.Synthesize(pastas.DefaultSynthConfig(2000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d patients, %d entries\n", wb.Patients(), wb.Entries())

	// 2. Identify a cohort: diabetics, by regex over both code systems.
	q, err := pastas.NewQueryBuilder().
		HasCode(`T90|E11(\..*)?`).
		MinContacts("gp", 2).
		Compile()
	if err != nil {
		log.Fatal(err)
	}
	diabetics, err := pastas.NewCohort(wb, "diabetics", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diabetics with GP follow-up: %d\n", diabetics.Count())

	// 3. Open a session, extract the cohort, align on first T90.
	sess, err := pastas.NewSession(wb)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Extract(q); err != nil {
		log.Fatal(err)
	}
	anchor, err := pastas.AlignFirst("T90")
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.AlignOn(anchor); err != nil {
		log.Fatal(err)
	}

	// 4. Render the Fig. 1 view and inspect one patient.
	svg := sess.RenderTimeline(pastas.TimelineOptions{MaxRows: 40, Tooltips: true, Legend: true})
	if err := os.WriteFile("quickstart_timeline.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote quickstart_timeline.svg (%d KiB)\n", len(svg)/1024)

	if sess.View().Len() > 0 {
		h := sess.View().At(0)
		fmt.Printf("\ndetails-on-demand for %s around their first entry:\n", h.Patient.ID)
		for _, line := range pastas.Details(h, h.Entries[0].Start, 7*pastas.Day) {
			fmt.Println("  " + line)
		}
	}

	// 5. The session auditing every operation against the 0.1 s budget.
	fmt.Println("\n" + sess.Budget().String())
}
