// Patternsearch: the workbench's temporal-pattern operations end to end —
// search for an acute-care pathway (stroke admission → GP follow-up →
// municipal home care), draw the hits as a Fails-style event chart, and
// stack similar trajectories adjacently with the clustering extension.
package main

import (
	"fmt"
	"log"
	"os"

	"pastas/internal/core"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)

	wb, err := core.Synthesize(synth.DefaultConfig(20000))
	if err != nil {
		log.Fatal(err)
	}
	sess := mustSession(wb)

	// The acute pathway of the paper's title: a stroke admission, primary
	// care follow-up within three months, then municipal home care.
	stroke := query.AllOf{
		query.TypeIs(model.TypeDiagnosis),
		query.MustCode("", `K90|I6[134](\..*)?`),
	}
	pathway := query.Sequence{Steps: []query.Step{
		{Pred: stroke},
		{Pred: query.AllOf{
			query.TypeIs(model.TypeContact), query.SourceIs(model.SourceGP),
		}, MaxGap: query.Days(90)},
		{Pred: query.TypeIs(model.TypeService), MaxGap: query.Days(180)},
	}}

	ids := sess.SearchPattern(pathway)
	fmt.Printf("stroke → GP follow-up → home care: %d of %d patients\n", len(ids), wb.Patients())

	// Narrow the view to the hits and draw the event chart.
	if err := sess.Extract(query.Has{Pred: stroke}); err != nil {
		log.Fatal(err)
	}
	chart := sess.RenderEventChart(pathway, render.EventChartOptions{Tooltips: true, MaxLines: 60})
	write("pathway_eventchart.svg", chart)

	// Cluster the stroke cohort by trajectory similarity and render the
	// timeline in clustered order.
	if err := sess.SortByCluster(4); err != nil {
		log.Fatal(err)
	}
	timeline := sess.RenderTimeline(render.TimelineOptions{MaxRows: 60, Legend: true})
	write("pathway_clustered_timeline.svg", timeline)

	fmt.Println("\nsession history:")
	for _, op := range sess.History() {
		fmt.Printf("  %-18s %s\n", op.Op, op.Detail)
	}
	fmt.Println("\n" + sess.CostOfKnowledge().String())
}

func write(name, svg string) {
	if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d KiB)\n", name, len(svg)/1024)
}

// mustSession opens a session; the workbench here is always store-backed.
func mustSession(wb *core.Workbench) *core.Session {
	s, err := core.NewSession(wb)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
