// Diabetesgraph: reproduce Fig. 2 — NSEPter's directed-graph view of
// diabetes histories merged around the first T90 code, then the same data
// through the noise-resilient alignment-based merge, with the readability
// metrics that motivated the paper's move to timelines.
package main

import (
	"fmt"
	"log"
	"os"

	"pastas/internal/core"
	"pastas/internal/graph"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/seqalign"
	"pastas/internal/synth"
)

func main() {
	log.SetFlags(0)

	wb, err := core.Synthesize(synth.DefaultConfig(3000))
	if err != nil {
		log.Fatal(err)
	}
	sess := mustSession(wb)
	if err := sess.Extract(query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", "T90")}}); err != nil {
		log.Fatal(err)
	}
	seqs := sess.DiagnosisSequences()
	if len(seqs) > 15 {
		seqs = seqs[:15]
	}
	fmt.Printf("building NSEPter graph over %d diabetes histories\n", len(seqs))

	// The paper's serial merge around the first T90.
	gSerial, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: 2})
	if err != nil {
		log.Fatal(err)
	}
	lSerial := graph.Layered(gSerial)
	write("diabetes_serial.svg", render.Graph(gSerial, lSerial, render.GraphOptions{Labels: true}))
	fmt.Printf("serial merge:  %d nodes, %d edges, compression %.2fx, %d crossings, max edge weight %d\n",
		len(gSerial.Nodes), len(gSerial.Edges), gSerial.Compression(),
		graph.Crossings(gSerial, lSerial), gSerial.MaxEdgeWeight())

	// The alignment-based merge from the follow-up project.
	gMSA := graph.MSAMerge(seqs, seqalign.ChapterCost{System: "ICPC2"})
	lMSA := graph.Layered(gMSA)
	write("diabetes_msa.svg", render.Graph(gMSA, lMSA, render.GraphOptions{Labels: true}))
	fmt.Printf("MSA merge:     %d nodes, %d edges, compression %.2fx, %d crossings\n",
		len(gMSA.Nodes), len(gMSA.Edges), gMSA.Compression(), graph.Crossings(gMSA, lMSA))

	fmt.Printf("\nlargest merges: T90 serial=%d msa=%d of %d histories\n",
		gSerial.LargestMerge("T90"), gMSA.LargestMerge("T90"), len(seqs))
}

func write(name, svg string) {
	if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d KiB)\n", name, len(svg)/1024)
}

// mustSession opens a session; the workbench here is always store-backed.
func mustSession(wb *core.Workbench) *core.Session {
	s, err := core.NewSession(wb)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
