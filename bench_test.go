package pastas_test

// The benchmark harness: one benchmark per paper figure and reported
// number, as indexed in DESIGN.md §4. Shared fixtures are built once per
// scale; the E1/E3 benchmarks run at the paper's full 168,000-patient
// scale (set -short to cap at 21,000).

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"pastas/internal/abstraction"
	"pastas/internal/align"
	"pastas/internal/cluster"
	"pastas/internal/cohort"
	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/graph"
	"pastas/internal/integrate"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/perception"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/seqalign"
	"pastas/internal/stats"
	"pastas/internal/store"
	"pastas/internal/synth"
	"pastas/internal/temporal"
	"pastas/internal/terminology"
	"pastas/internal/webapp"
)

// --- fixtures ---------------------------------------------------------------

var (
	fixtures   = map[int]*core.Workbench{}
	fixturesMu sync.Mutex
)

// workbenchAt returns a cached workbench for a population size.
func workbenchAt(b *testing.B, n int) *core.Workbench {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if wb, ok := fixtures[n]; ok {
		return wb
	}
	wb, err := core.Synthesize(synth.DefaultConfig(n))
	if err != nil {
		b.Fatal(err)
	}
	fixtures[n] = wb
	return wb
}

// fullScale is the paper's population, capped under -short.
func fullScale() int {
	if testing.Short() {
		return 21000
	}
	return 168000
}

func studyCohort(b *testing.B, wb *core.Workbench) *cohort.Cohort {
	b.Helper()
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	c, err := cohort.FromExpr(wb.Store, "study", cohort.StudyCriteria(window))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// mustSession opens a session over a store-backed workbench.
func mustSession(b *testing.B, wb *core.Workbench) *core.Session {
	b.Helper()
	s, err := core.NewSession(wb)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// --- F1: workbench render (Fig. 1) -------------------------------------------

func BenchmarkF1_WorkbenchRender(b *testing.B) {
	for _, rows := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			wb := workbenchAt(b, 21000)
			col := cohort.All(wb.Store, "all").Sample(rows, 1).Collection()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svg := render.Timeline(col, render.TimelineOptions{Legend: true})
				if len(svg) == 0 {
					b.Fatal("empty render")
				}
			}
		})
	}
}

// --- F2: NSEPter merge and layout (Fig. 2) -----------------------------------

func diabeticSeqs(b *testing.B, wb *core.Workbench, max int) [][]string {
	b.Helper()
	diab, err := cohort.FromExpr(wb.Store, "diab", query.Has{
		Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", "T90")}})
	if err != nil {
		b.Fatal(err)
	}
	var seqs [][]string
	for _, h := range diab.Sample(max, 2).Collection().Histories() {
		var seq []string
		for _, c := range h.CodeSequence(model.TypeDiagnosis) {
			if c.System == "ICPC2" {
				seq = append(seq, c.Value)
			}
		}
		if len(seq) >= 2 {
			seqs = append(seqs, seq)
		}
	}
	return seqs
}

func BenchmarkF2a_NSEPterMerge(b *testing.B) {
	wb := workbenchAt(b, 21000)
	seqs := diabeticSeqs(b, wb, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: 2})
		if err != nil {
			b.Fatal(err)
		}
		_ = render.Graph(g, graph.Layered(g), render.GraphOptions{Labels: true})
	}
}

func BenchmarkF2b_FullGraphLayout(b *testing.B) {
	wb := workbenchAt(b, 21000)
	seqs := diabeticSeqs(b, wb, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: 2})
		if err != nil {
			b.Fatal(err)
		}
		l := graph.Layered(g)
		if graph.Crossings(g, l) < 0 {
			b.Fatal("impossible")
		}
	}
}

// --- F3: visual search simulation (Fig. 3) -----------------------------------

func BenchmarkF3_VisualSearch(b *testing.B) {
	m := perception.DefaultModel()
	ns := []int{1, 5, 10, 20, 30, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := m.Series(perception.Feature, ns, 200, 1)
		c := m.Series(perception.Conjunction, ns, 200, 1)
		if _, slope := perception.FitLine(c); slope < 10 {
			b.Fatal("conjunction slope collapsed")
		}
		_ = f
	}
}

// --- F4: query builder (Fig. 4), with the regex-cache ablation ----------------

func BenchmarkF4_QueryBuilder(b *testing.B) {
	wb := workbenchAt(b, 21000)
	spec := query.NewBuilder().HasCodeIn("ICPC2", `F.*|H.*`).MinContacts("gp", 2).Spec()
	data, err := spec.MarshalJSONSpec()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("parse+compile+eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			back, err := query.ParseSpec(data)
			if err != nil {
				b.Fatal(err)
			}
			expr, err := back.Compile()
			if err != nil {
				b.Fatal(err)
			}
			bits, err := wb.Query(expr)
			if err != nil {
				b.Fatal(err)
			}
			if bits.Count() == 0 {
				b.Fatal("empty cohort")
			}
		}
	})
	// Ablation: what the compiled-pattern cache buys (DESIGN.md §5).
	b.Run("regex-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := terminology.CompileCodePattern(`F.*|H.*`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("regex-uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := terminology.CompileCodePatternUncached(`F.*|H.*`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E1: the 168k → 13k selection ---------------------------------------------

func BenchmarkE1_CohortSelection168k(b *testing.B) {
	wb := workbenchAt(b, fullScale())
	b.ResetTimer()
	var got int
	for i := 0; i < b.N; i++ {
		got = studyCohort(b, wb).Count()
	}
	b.ReportMetric(float64(got), "selected")
	b.ReportMetric(100*float64(got)/float64(wb.Patients()), "selected_%")
}

// --- E2: recognition survey -----------------------------------------------------

func BenchmarkE2_RecognitionSurvey(b *testing.B) {
	wb := workbenchAt(b, fullScale())
	col := studyCohort(b, wb).Collection()
	b.ResetTimer()
	var res stats.SurveyResult
	for i := 0; i < b.N; i++ {
		res = stats.SimulateSurvey(col, stats.DefaultSurveyParams())
	}
	rec, notRem, wrong := res.Proportions()
	b.ReportMetric(100*rec, "recognized_%")
	b.ReportMetric(100*notRem, "not_remember_%")
	b.ReportMetric(100*wrong, "all_wrong_%")
}

// --- E3: large-cohort analysis, index vs scan ------------------------------------

func BenchmarkE3_LargeCohortAnalysis(b *testing.B) {
	wb := workbenchAt(b, fullScale())
	pattern := `T90|E11(\..*)?`
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bits, err := wb.Store.WithCodeRegex("", pattern)
			if err != nil {
				b.Fatal(err)
			}
			if bits.Count() == 0 {
				b.Fatal("no diabetics")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bits, err := wb.Store.WithCodeRegexScan("", pattern)
			if err != nil {
				b.Fatal(err)
			}
			if bits.Count() == 0 {
				b.Fatal("no diabetics")
			}
		}
	})
	b.Run("align+aggregate", func(b *testing.B) {
		bits, err := wb.Store.WithCodeRegex("", pattern)
		if err != nil {
			b.Fatal(err)
		}
		diabetics := wb.Store.Subset(bits)
		anchor := align.First(query.AllOf{
			query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := align.Align(diabetics, anchor)
			months := map[int]int{}
			for _, h := range res.Col.Histories() {
				off := res.Offsets[h.Patient.ID]
				for j := range h.Entries {
					e := &h.Entries[j]
					if e.Type == model.TypeContact {
						months[int((e.Start-off)/model.Month)]++
					}
				}
			}
			if len(months) == 0 {
				b.Fatal("no aggregate")
			}
		}
	})
}

// --- E6: query planner/executor vs the legacy interpreter --------------------------

// BenchmarkE6_PlannerVsInterpreter runs the E3 large-cohort workload — the
// diabetic cohort intersected with a scan-only utilization criterion —
// through the legacy single-store interpreter and through the engine. The
// engine wins twice: cold, because the optimizer hoists the
// index-answerable diagnosis leaf and masks the expensive counting scan
// down to the surviving candidates (and fans shards out across cores);
// warm, because the refinement loop re-hits the plan cache.
func BenchmarkE6_PlannerVsInterpreter(b *testing.B) {
	wb := workbenchAt(b, fullScale())
	diabetic := query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}}
	workload := query.And{
		diabetic,
		query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
	}
	var want int
	{
		bits, err := query.EvalIndexed(wb.Store, workload)
		if err != nil {
			b.Fatal(err)
		}
		want = bits.Count()
		if want == 0 {
			b.Fatal("empty workload cohort")
		}
	}
	check := func(b *testing.B, bits *store.Bitset, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if bits.Count() != want {
			b.Fatalf("cohort drifted: %d, want %d", bits.Count(), want)
		}
	}
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bits, err := query.EvalIndexed(wb.Store, workload)
			check(b, bits, err)
		}
	})
	b.Run("engine-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wb.Engine.ResetCache()
			bits, err := wb.Engine.Execute(workload)
			check(b, bits, err)
		}
	})
	b.Run("engine-warm", func(b *testing.B) {
		wb.Engine.ResetCache()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bits, err := wb.Engine.Execute(workload)
			check(b, bits, err)
		}
	})
}

// --- E8: cost-based planning on a skewed-selectivity conjunction --------------------

// skewedStore hand-builds a population whose code distribution is heavily
// skewed: C60 on 60% of patients, C40 on 40%, R01 on 0.3% — all needing
// MinCount ≥ 2, so every leaf is a counting scan the indexes cannot
// answer directly. The workload conjunction lists the common predicates
// first; the static hoist preserves that order and pays the wide scans
// up front, while the cost-based planner reads the skew off the store
// statistics and drives with the rare predicate.
func skewedStore(n int) *store.Store {
	base := model.Date(2010, 1, 1)
	code := func(v string) model.Code { return model.Code{System: "ICPC2", Value: v} }
	hs := make([]*model.History, n)
	for i := range hs {
		h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1950, 1, 1)})
		eid := uint64(0)
		add := func(c model.Code) {
			eid++
			h.Add(model.Entry{ID: eid, Kind: model.Point,
				Start: base.AddDays(int(eid)), End: base.AddDays(int(eid)),
				Type: model.TypeDiagnosis, Source: model.SourceGP, Code: c})
		}
		for j := 0; j < 24; j++ { // filler: every scan pays per-entry cost
			add(code("Z00"))
		}
		if i%10 < 6 {
			add(code("C60"))
			add(code("C60"))
		}
		if i%10 < 4 {
			add(code("C40"))
			add(code("C40"))
		}
		if i%333 == 0 {
			add(code("R01"))
			add(code("R01"))
		}
		hs[i] = h
	}
	return store.New(model.MustCollection(hs...))
}

// BenchmarkE8_CostBasedPlanning measures the same conjunction executed
// under the static index-before-scan hoist (PR 1's optimizer) and under
// cost-based selectivity ordering, on the same engine with the plan
// cache disabled. The cost-based plan evaluates the 0.3%-selective
// predicate first, so the two common counting scans only visit the
// handful of surviving candidates.
func BenchmarkE8_CostBasedPlanning(b *testing.B) {
	n := 30000
	if testing.Short() {
		n = 8000
	}
	st := skewedStore(n)
	workload := query.And{
		query.Has{Pred: query.MustCode("ICPC2", "C60"), MinCount: 2},
		query.Has{Pred: query.MustCode("ICPC2", "C40"), MinCount: 2},
		query.Has{Pred: query.MustCode("ICPC2", "R01"), MinCount: 2},
	}
	compiled, err := engine.Compile(workload)
	if err != nil {
		b.Fatal(err)
	}
	want, err := query.EvalIndexed(st, workload)
	if err != nil {
		b.Fatal(err)
	}
	if want.Count() == 0 {
		b.Fatal("empty skewed cohort")
	}
	eng := engine.New(st, engine.Options{Shards: engine.DefaultOptions().Shards, CacheSize: 0})
	run := func(b *testing.B, p engine.Plan) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			bits, err := eng.ExecutePlan(p)
			if err != nil {
				b.Fatal(err)
			}
			if bits.Count() != want.Count() {
				b.Fatalf("cohort drifted: %d, want %d", bits.Count(), want.Count())
			}
		}
	}
	b.Run("static-hoist", func(b *testing.B) { run(b, engine.Optimize(compiled)) })
	b.Run("cost-based", func(b *testing.B) { run(b, engine.OptimizeWithStats(compiled, st.Stats())) })
}

// --- E7: parallel ingest over the six registries -----------------------------------

// BenchmarkE7_ParallelIngest measures integrate.Build with the staging
// pipeline forced serial versus fanned out across the registries, plus the
// sharded index build the engine performs on top of an integrated
// collection.
func BenchmarkE7_ParallelIngest(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	bundle := synth.Generate(synth.DefaultConfig(n))
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"concurrent", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := integrate.DefaultOptions()
			opts.Concurrency = cfg.workers
			for i := 0; i < b.N; i++ {
				col, _, err := integrate.Build(bundle, opts)
				if err != nil {
					b.Fatal(err)
				}
				if col.Len() == 0 {
					b.Fatal("empty collection")
				}
			}
		})
	}
	b.Run("shard-index", func(b *testing.B) {
		col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		st := store.New(col)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := engine.New(st, engine.DefaultOptions())
			if eng.NumShards() < 1 {
				b.Fatal("no shards")
			}
		}
	})
}

// --- E9: snapshot reopen -----------------------------------------------------------

// BenchmarkE9_SnapshotReopen measures the workbench-level "reopen a saved
// session" path the paper's workflow depends on (re-integrating six
// registries vs. reopening a persisted collection): core.Open of a legacy
// v1 single-gob snapshot against sharded v2 snapshots at 1, 4 and 16
// shards. Open re-indexes the store after decode, so the delta between
// variants isolates what the snapshot format itself buys.
func BenchmarkE9_SnapshotReopen(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	wb := workbenchAt(b, n)

	var legacy bytes.Buffer
	if err := wb.SaveSnapshot(&legacy); err != nil {
		b.Fatal(err)
	}
	snaps := map[string][]byte{"legacy-v1": legacy.Bytes()}
	order := []string{"legacy-v1"}
	for _, shards := range []int{1, 4, 16} {
		var buf bytes.Buffer
		if _, err := wb.Save(&buf, core.SnapshotOptions{Shards: shards}); err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("shards=%d", shards)
		snaps[name] = buf.Bytes()
		order = append(order, name)
	}
	for _, name := range order {
		snap := snaps[name]
		b.Run(fmt.Sprintf("open/%s", name), func(b *testing.B) {
			b.SetBytes(int64(len(snap)))
			for i := 0; i < b.N; i++ {
				back, err := core.Open(bytes.NewReader(snap), wb.Window)
				if err != nil {
					b.Fatal(err)
				}
				if back.Patients() != wb.Patients() {
					b.Fatal("reopen lost patients")
				}
			}
		})
	}
}

// --- E10: distributed execution over remote shard servers --------------------------

// startBenchCluster saves the collection as an 8-shard snapshot and
// serves it from two loopback shard servers (4 shards each); returns a
// connected workbench plus the snapshot path for the loader benchmarks.
func startBenchCluster(b *testing.B, wb *core.Workbench) (*core.Workbench, string) {
	b.Helper()
	return startBenchClusterOpts(b, wb, engine.DefaultOptions())
}

// startBenchClusterOpts is startBenchCluster with explicit coordinator
// options — E12 needs the coordinator's result cache off so its warm arm
// measures feedback planning, not cache hits.
func startBenchClusterOpts(b *testing.B, wb *core.Workbench, opts engine.Options) (*core.Workbench, string) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "e10.snap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := wb.Save(f, core.SnapshotOptions{Shards: 8}); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	var addrs []string
	for _, ids := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		// Server-side plan caches off: the "cold" arms reset the
		// coordinator's caches each iteration, and a warm server cache
		// would quietly turn them into wire-overhead measurements.
		srvOpts := engine.DefaultOptions()
		srvOpts.CacheSize = 0
		srv, err := engine.NewShardServer(path, ids, srvOpts)
		if err != nil {
			b.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { lis.Close() })
		go srv.Serve(lis)
		addrs = append(addrs, lis.Addr().String())
	}
	remote, err := core.Connect(addrs, engine.RemoteOptions{}, opts, wb.Window)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { remote.Close() })
	return remote, path
}

// BenchmarkE10_RemoteFanout prices the distributed execution path: the
// E6 cohort workload over loopback shard servers versus the in-process
// engine (cold = plan caches reset every iteration, warm = the
// refinement loop), the E8 skewed conjunction likewise, and the lazy
// OpenShards loader versus streaming the whole snapshot — one shard
// server's share (2 of 8 shards) against the full LoadSharded.
func BenchmarkE10_RemoteFanout(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	wb := workbenchAt(b, n)
	remote, path := startBenchCluster(b, wb)

	workload := query.And{
		query.Has{Pred: query.AllOf{
			query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}},
		query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
	}
	want, err := query.EvalIndexed(wb.Store, workload)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name string
		wb   *core.Workbench
	}{{"local", wb}, {"remote", remote}}
	for _, eng := range engines {
		b.Run("e6-cold/"+eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.wb.Engine.ResetCache()
				bits, err := eng.wb.Query(workload)
				if err != nil {
					b.Fatal(err)
				}
				if bits.Count() != want.Count() {
					b.Fatalf("cohort drifted: %d, want %d", bits.Count(), want.Count())
				}
			}
		})
		b.Run("e6-warm/"+eng.name, func(b *testing.B) {
			eng.wb.Engine.ResetCache()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bits, err := eng.wb.Query(workload)
				if err != nil {
					b.Fatal(err)
				}
				if bits.Count() != want.Count() {
					b.Fatalf("cohort drifted: %d, want %d", bits.Count(), want.Count())
				}
			}
		})
	}

	// E8's skewed conjunction: cost-based ordering happens on both sides
	// (coordinator from merged stats, shard servers from their own), so
	// the rare predicate drives remotely too.
	skewN := n
	skewed := skewedStore(skewN)
	skewWb := core.FromCollection(skewed.Collection(), wb.Window)
	skewRemote, _ := startBenchCluster(b, skewWb)
	skewWorkload := query.And{
		query.Has{Pred: query.MustCode("ICPC2", "C60"), MinCount: 2},
		query.Has{Pred: query.MustCode("ICPC2", "C40"), MinCount: 2},
		query.Has{Pred: query.MustCode("ICPC2", "R01"), MinCount: 2},
	}
	skewWant, err := query.EvalIndexed(skewed, skewWorkload)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []struct {
		name string
		wb   *core.Workbench
	}{{"local", skewWb}, {"remote", skewRemote}} {
		b.Run("e8-cold/"+eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.wb.Engine.ResetCache()
				bits, err := eng.wb.Query(skewWorkload)
				if err != nil {
					b.Fatal(err)
				}
				if bits.Count() != skewWant.Count() {
					b.Fatalf("cohort drifted: %d, want %d", bits.Count(), skewWant.Count())
				}
			}
		})
	}

	// Loader: one server's share of the snapshot via random access
	// versus streaming-decoding the whole file.
	info, err := store.Inspect(mustOpenFile(b, path))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("load/full-LoadSharded", func(b *testing.B) {
		b.SetBytes(info.Bytes)
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			col, _, err := store.LoadSharded(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if col.Len() != wb.Patients() {
				b.Fatal("full load lost patients")
			}
		}
	})
	b.Run("load/OpenShards-2-of-8", func(b *testing.B) {
		lazyBytes := int64(0)
		for _, sh := range info.ShardDetail[:2] {
			lazyBytes += sh.Bytes
		}
		b.SetBytes(lazyBytes)
		for i := 0; i < b.N; i++ {
			opened, _, err := store.OpenShards(path, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			got := 0
			for _, sh := range opened {
				got += sh.Col.Len()
			}
			if got == 0 {
				b.Fatal("lazy load lost patients")
			}
		}
	})
}

// BenchmarkE11_RemoteHistories prices the history-level RPCs that make a
// connected workbench serve the paper's own UI: one patient's timeline
// fetch (the /timeline page), a 100-sample cohort fetch (the cohort
// view), and the indicator panel two ways — server-side aggregation
// (fixed-size tallies per shard) versus shipping every cohort history
// and tallying at the coordinator, the tradeoff the aggregate RPC
// exists to win.
func BenchmarkE11_RemoteHistories(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	wb := workbenchAt(b, n)
	remote, _ := startBenchCluster(b, wb)

	id := wb.Store.Collection().IDs()[n/2]
	engines := []struct {
		name string
		wb   *core.Workbench
	}{{"local", wb}, {"remote", remote}}
	for _, eng := range engines {
		b.Run("single/"+eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, err := eng.wb.History(id)
				if err != nil {
					b.Fatal(err)
				}
				if h.Patient.ID != id {
					b.Fatal("wrong history")
				}
			}
		})
	}

	cohortExpr := query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}}
	bits, err := wb.Query(cohortExpr)
	if err != nil {
		b.Fatal(err)
	}
	sample := bits.FirstN(100)
	want := sample.Count()
	for _, eng := range engines {
		b.Run("cohort-100/"+eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col, err := eng.wb.Histories(sample)
				if err != nil {
					b.Fatal(err)
				}
				if col.Len() != want {
					b.Fatalf("fetched %d of %d", col.Len(), want)
				}
			}
		})
	}

	// The indicator panel for the whole cohort: aggregate where the
	// histories live, versus ship-all-and-tally — identical numbers, very
	// different wire bills.
	wantInd, err := wb.Indicators(bits)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range engines {
		b.Run("indicators-aggregate/"+eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ind, err := eng.wb.Indicators(bits)
				if err != nil {
					b.Fatal(err)
				}
				if ind != wantInd {
					b.Fatal("indicators drifted")
				}
			}
		})
	}
	b.Run("indicators-shipall/remote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col, err := remote.Histories(bits)
			if err != nil {
				b.Fatal(err)
			}
			ind := stats.ComputeIndicators(col, wb.Window)
			if ind != wantInd {
				b.Fatal("indicators drifted")
			}
		}
	})
}

func mustOpenFile(b *testing.B, path string) *os.File {
	b.Helper()
	f, err := os.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// --- E4: web timelines -------------------------------------------------------------

func BenchmarkE4_WebTimelines(b *testing.B) {
	wb := workbenchAt(b, 21000)
	srv := httptest.NewServer(webapp.NewServer(wb, webapp.DefaultConfig()))
	defer srv.Close()
	client := srv.Client()
	ids := wb.Store.Collection().IDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		resp, err := client.Get(fmt.Sprintf("%s/timeline?patient=%d&pw=tromsø", srv.URL, uint64(id)))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// --- E5: interaction latency ---------------------------------------------------------

func BenchmarkE5_InteractionLatency(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		wbSize := size
		b.Run(fmt.Sprintf("n=%d/extract", size), func(b *testing.B) {
			wb := workbenchAt(b, wbSize)
			expr := query.Has{Pred: query.AllOf{
				query.TypeIs(model.TypeDiagnosis), query.MustCode("", `K8.|T90`)}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := mustSession(b, wb)
				if err := sess.Extract(expr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/align", size), func(b *testing.B) {
			wb := workbenchAt(b, wbSize)
			anchor := align.First(query.AllOf{
				query.TypeIs(model.TypeDiagnosis), query.MustCode("", `K8.|T90`)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := mustSession(b, wb)
				if err := sess.AlignOn(anchor); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/render50", size), func(b *testing.B) {
			wb := workbenchAt(b, wbSize)
			sess := mustSession(b, wb)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if svg := sess.RenderTimeline(render.TimelineOptions{MaxRows: 50}); len(svg) == 0 {
					b.Fatal("empty")
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/details", size), func(b *testing.B) {
			wb := workbenchAt(b, wbSize)
			sess := mustSession(b, wb)
			h := sess.View().At(0)
			if h.Len() == 0 {
				b.Skip("empty first history")
			}
			at := h.Entries[0].Start
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sess.Details(h.Patient.ID, at)
			}
		})
	}
}

// --- A1: merge noise ablation -----------------------------------------------------------

func BenchmarkA1_MergeNoiseAblation(b *testing.B) {
	backbone := []string{"A04", "T90", "K86", "F83", "K77"}
	noise := []string{"R74", "L03", "D01"}
	gen := func(eps float64, n int) [][]string {
		r := synth.NewRand(11)
		out := make([][]string, n)
		for i := range out {
			var seq []string
			for _, c := range backbone {
				for r.Bernoulli(eps) {
					seq = append(seq, Pick(r, noise))
				}
				seq = append(seq, c)
			}
			out[i] = seq
		}
		return out
	}
	seqs := gen(0.10, 40)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: 5})
			if err != nil {
				b.Fatal(err)
			}
			_ = g.Compression()
		}
	})
	b.Run("msa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := graph.MSAMerge(seqs, seqalign.ChapterCost{System: "ICPC2"})
			_ = g.Compression()
		}
	})
}

// Pick re-exports synth.Pick for the bench generator.
func Pick[T any](r *synth.Rand, xs []T) T { return synth.Pick(r, xs) }

// --- A2: interval reasoning ---------------------------------------------------------------

func BenchmarkA2_IntervalReasoning(b *testing.B) {
	// An 8-interval chain network with erased edges.
	periods := make([]model.Period, 8)
	names := make([]string, 8)
	for i := range periods {
		start := model.Time(i) * 100
		periods[i] = model.Period{Start: start, End: start + 60}
		names[i] = fmt.Sprintf("ep%d", i)
	}
	base, err := temporal.FromPeriods(names, periods)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := base.Clone()
		for j := 0; j+2 < net.Size(); j += 2 {
			net.Erase(j, j+2)
		}
		if !net.PathConsistency() {
			b.Fatal("inconsistent")
		}
	}
}

// --- A3: association mining ------------------------------------------------------------------

func BenchmarkA3_AssociationMining(b *testing.B) {
	wb := workbenchAt(b, 21000)
	seqs := diabeticSeqs(b, wb, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co := mining.CoOccurrence(seqs, mining.Options{MinSupport: 0.05})
		sq := mining.Sequential(seqs, mining.Options{MinSupport: 0.05})
		if len(co) == 0 || len(sq) == 0 {
			b.Fatal("no rules")
		}
	}
}

// --- X1: trajectory clustering -----------------------------------------------------------------

func BenchmarkX1_TrajectoryClustering(b *testing.B) {
	wb := workbenchAt(b, 21000)
	seqs := diabeticSeqs(b, wb, 60)
	cost := seqalign.ChapterCost{System: "ICPC2"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Sequences(seqs, cost, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Order()) != len(seqs) {
			b.Fatal("order lost items")
		}
	}
}

// --- E12: million-patient scale --------------------------------------------------

// e12Scale is the tentpole population: the containerized bitmaps and the
// feedback planner are proven at 1M patients, not extrapolated from 168k.
// -short caps at 100k so the CI smoke run stays quick.
func e12Scale() int {
	if testing.Short() {
		return 100_000
	}
	return 1_000_000
}

// e12Collection hand-builds the population — the full synth pipeline
// would dominate setup at this scale. Every patient carries two
// measurements: one from [0,100) (patient i reads i%100) and one from
// [1000,1100) on a decorrelated cycle, so ValueBetween predicates give
// precisely controlled selectivities that the cost model's uniform prior
// cannot see — exactly the correlated-conjunction shape the feedback
// loop exists to fix.
func e12Collection(n int) *model.Collection {
	base := model.Date(2010, 6, 1)
	hs := make([]*model.History, n)
	for i := range hs {
		h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1955, 1, 1)})
		h.Add(model.Entry{
			ID: uint64(2 * i), Kind: model.Point, Start: base, End: base,
			Type: model.TypeMeasurement, Source: model.Source(1), Value: float64(i % 100),
		})
		h.Add(model.Entry{
			ID: uint64(2*i + 1), Kind: model.Point, Start: base, End: base,
			Type: model.TypeMeasurement, Source: model.Source(1), Value: 1000 + float64((i*37)%100),
		})
		hs[i] = h
	}
	return model.MustCollection(hs...)
}

var (
	e12Fixture   *store.Store
	e12FixtureN  int
	e12FixtureMu sync.Mutex
)

func e12Store(b *testing.B) *store.Store {
	b.Helper()
	e12FixtureMu.Lock()
	defer e12FixtureMu.Unlock()
	if n := e12Scale(); e12Fixture == nil || e12FixtureN != n {
		e12Fixture = store.New(e12Collection(n))
		e12FixtureN = n
	}
	return e12Fixture
}

// BenchmarkE12_MillionPatient prices the PR-6 tentpole at scale. The
// workload is a correlated conjunction of two unbounded ValueBetween
// scans — identical priors, wildly different true selectivities (the
// narrow band is contained in the wide one) — so the cold plan runs them
// in compile order and the feedback re-plan runs the selective scan
// first. Result caches are off everywhere (CacheSize 0): the cold/warm
// gap is pure planning, every iteration recomputes the cohort. The
// distributed arms run the same pair over two loopback shard servers;
// setops prices a raw containerized And over two ~50%-dense postings.
func BenchmarkE12_MillionPatient(b *testing.B) {
	st := e12Store(b)
	n := e12Scale()
	vb := func(lo, hi float64) query.Expr {
		return query.Has{Pred: query.ValueBetween{Lo: lo, Hi: hi}}
	}
	wide, narrow := vb(0, 94), vb(90, 94) // 95% and 5%, narrow ⊂ wide
	workload := query.And{wide, narrow}
	want := n / 100 * 5
	check := func(b *testing.B, bits *store.Bitset, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if bits.Count() != want {
			b.Fatalf("cohort drifted: %d, want %d", bits.Count(), want)
		}
	}

	eng := engine.New(st, engine.Options{Shards: engine.DefaultOptions().Shards, CacheSize: 0})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.ResetCache() // feedback and plan memo too: every iteration plans blind
			bits, err := eng.Execute(workload)
			check(b, bits, err)
		}
	})
	b.Run("warm-feedback", func(b *testing.B) {
		eng.ResetCache()
		if _, err := eng.Execute(workload); err != nil { // prime: record true cardinalities
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bits, err := eng.Execute(workload)
			check(b, bits, err)
		}
	})

	// Three-way variant: two anti-correlated 50% bands plus an independent
	// 40% band. Greedy feedback ordering (leaf cardinalities only) leads
	// with the independent band; the join-order DP sees the observed 5%
	// prefix and runs the anti-correlated pair first.
	three := query.And{vb(0, 49), vb(45, 94), vb(1000, 1039)}
	b.Run("correlated3-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.ResetCache()
			bits, err := eng.Execute(three)
			if err != nil {
				b.Fatal(err)
			}
			if bits.Count() == 0 {
				b.Fatal("empty three-way cohort")
			}
		}
	})
	b.Run("correlated3-warm", func(b *testing.B) {
		eng.ResetCache()
		if _, err := eng.Execute(three); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bits, err := eng.Execute(three)
			if err != nil {
				b.Fatal(err)
			}
			if bits.Count() == 0 {
				b.Fatal("empty three-way cohort")
			}
		}
	})

	// Raw containerized set operations over population-scale bitsets.
	b.Run("setops-and", func(b *testing.B) {
		even := store.NewBitset(n)
		third := store.NewBitset(n)
		for i := 0; i < n; i += 2 {
			even.Set(i)
		}
		for i := 0; i < n; i += 3 {
			third.Set(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc := even.Clone()
			acc.And(third)
			if acc.Count() == 0 {
				b.Fatal("empty intersection")
			}
		}
	})

	// Distributed: the same correlated pair over two loopback shard
	// servers (result caches off on both sides; the coordinator's
	// feedback loop learns from remotely-evaluated leaves too).
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	wb := core.FromCollection(st.Collection(), window)
	coordOpts := engine.DefaultOptions()
	coordOpts.CacheSize = 0
	remote, _ := startBenchClusterOpts(b, wb, coordOpts)
	b.Run("distributed-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			remote.Engine.ResetCache()
			bits, err := remote.Query(workload)
			check(b, bits, err)
		}
	})
	b.Run("distributed-warm", func(b *testing.B) {
		remote.Engine.ResetCache()
		if _, err := remote.Query(workload); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bits, err := remote.Query(workload)
			check(b, bits, err)
		}
	})
}

// --- E13: replicated failover under churn ------------------------------------

// benchReplica is one killable, restartable shard-server process stand-in:
// the listener tracks accepted connections so kill() tears down the
// listener and every live connection at once, exactly like a crashed
// process, and restart() brings a fresh server back on the same address.
type benchReplica struct {
	addr string
	path string
	ids  []int

	mu    sync.Mutex
	srv   *engine.ShardServer
	lis   net.Listener
	conns []net.Conn
}

// replicaListener ties one server incarnation to one fixed listener
// (a restarted server must never accept through its predecessor's),
// while registering accepted connections on the shared replica so
// kill() can sever them.
type replicaListener struct {
	net.Listener
	parent *benchReplica
}

func (l *replicaListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.parent.mu.Lock()
		l.parent.conns = append(l.parent.conns, c)
		l.parent.mu.Unlock()
	}
	return c, err
}

func (r *benchReplica) kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lis != nil {
		r.lis.Close()
	}
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
}

// restart brings a fresh server back on the replica's address. It may
// run from the churn goroutine, so failures report via b.Error (Fatal
// is test-goroutine-only); the replica set keeps serving from the
// survivor either way.
func (r *benchReplica) restart(b *testing.B) {
	b.Helper()
	srvOpts := engine.DefaultOptions()
	srvOpts.CacheSize = 0
	srv, err := engine.NewShardServer(r.path, r.ids, srvOpts)
	if err != nil {
		b.Error(err)
		return
	}
	var lis net.Listener
	for attempt := 0; ; attempt++ {
		lis, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		if attempt >= 20 {
			b.Errorf("rebind %s: %v", r.addr, err)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.mu.Lock()
	r.srv = srv
	r.lis = lis
	r.addr = lis.Addr().String()
	r.mu.Unlock()
	go srv.Serve(&replicaListener{Listener: lis, parent: r})
}

// startReplicatedCluster saves wb as a 4-shard snapshot and serves every
// shard from two independent replica servers, returning a strict
// coordinator whose per-shard backends are replica sets, plus the
// kill/restart handles.
func startReplicatedCluster(b *testing.B, wb *core.Workbench) (*core.Workbench, []*benchReplica) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "e13.snap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := wb.Save(f, core.SnapshotOptions{Shards: 4}); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	replicas := make([]*benchReplica, 2)
	for i := range replicas {
		replicas[i] = &benchReplica{addr: "127.0.0.1:0", path: path, ids: []int{0, 1, 2, 3}}
		replicas[i].restart(b)
		b.Cleanup(replicas[i].kill)
	}
	coordOpts := engine.DefaultOptions()
	coordOpts.CacheSize = 0 // every op must fan out and face the churn
	remote, err := core.Connect(
		[]string{replicas[0].addr + "|" + replicas[1].addr},
		engine.RemoteOptions{Timeout: 10 * time.Second},
		coordOpts, wb.Window)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { remote.Close() })
	return remote, replicas
}

// e13Session runs one mixed workbench operation — cohort query, timeline
// fetch or indicator aggregation, dealt round-robin — and returns its
// latency. Any error is fatal: the failover contract is zero query
// errors while replicas die.
func e13Session(b *testing.B, remote *core.Workbench, ids []model.PatientID, cohortBits *store.Bitset, i int) time.Duration {
	exprs := []query.Expr{
		query.Has{Pred: query.AllOf{
			query.TypeIs(model.TypeDiagnosis), query.MustCode("", `T90|E11(\..*)?`)}},
		query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2},
		query.SexIs(model.SexFemale),
	}
	t0 := time.Now()
	switch i % 3 {
	case 0:
		if _, err := remote.Query(exprs[(i/3)%len(exprs)]); err != nil {
			b.Fatalf("op %d: query: %v", i, err)
		}
	case 1:
		if _, err := remote.History(ids[i%len(ids)]); err != nil {
			b.Fatalf("op %d: timeline: %v", i, err)
		}
	default:
		if _, err := remote.Indicators(cohortBits); err != nil {
			b.Fatalf("op %d: indicators: %v", i, err)
		}
	}
	return time.Since(t0)
}

func reportPercentiles(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx].Microseconds()) / 1000.0
	}
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
}

// BenchmarkE13_ReplicatedFailover prices the replication tier's promise:
// mixed query/timeline/indicator sessions against a 2-replica cluster,
// (a) steady-state — the replication wrapper's overhead with everything
// healthy, (b) with one replica of every shard crashed mid-run — strict
// mode completes with zero errors, and (c) under kill/restart churn —
// one replica crashing and rejoining continuously. Each arm reports p50
// and p99 op latency alongside ns/op.
func BenchmarkE13_ReplicatedFailover(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	wb := workbenchAt(b, n)
	ids := wb.Store.Collection().IDs()

	b.Run("steady", func(b *testing.B) {
		remote, _ := startReplicatedCluster(b, wb)
		cohortBits, err := remote.Query(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
		if err != nil {
			b.Fatal(err)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, e13Session(b, remote, ids, cohortBits, i))
		}
		b.StopTimer()
		reportPercentiles(b, lat)
	})

	b.Run("one-replica-killed", func(b *testing.B) {
		remote, replicas := startReplicatedCluster(b, wb)
		cohortBits, err := remote.Query(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
		if err != nil {
			b.Fatal(err)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i == b.N/2 {
				// Crash one replica of every shard mid-benchmark. The
				// acceptance bar: zero errors from here on, in strict mode.
				replicas[0].kill()
			}
			lat = append(lat, e13Session(b, remote, ids, cohortBits, i))
		}
		b.StopTimer()
		reportPercentiles(b, lat)
	})

	b.Run("kill-restart-churn", func(b *testing.B) {
		remote, replicas := startReplicatedCluster(b, wb)
		cohortBits, err := remote.Query(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var churn sync.WaitGroup
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(60 * time.Millisecond):
				}
				replicas[0].kill()
				select {
				case <-stop:
					return
				case <-time.After(60 * time.Millisecond):
				}
				replicas[0].restart(b)
			}
		}()
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, e13Session(b, remote, ids, cohortBits, i))
		}
		b.StopTimer()
		close(stop)
		churn.Wait()
		reportPercentiles(b, lat)
	})
}

// BenchmarkE14_QueryUnderIngest prices the live-ingest tentpole: the
// same cohort query (a) against a quiescent workbench — the warm-cache
// baseline, (b) while a writer appends follow-on rounds continuously —
// every append advances the generation, so plan memos and result caches
// re-epoch and the query pays planning plus base ∪ delta reads, and
// (c) after the feed stops and compaction folds the delta — warm-cache
// latency must recover to the baseline's neighborhood. Each arm reports
// p50 and p99 alongside ns/op.
func BenchmarkE14_QueryUnderIngest(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	cfg := synth.DefaultConfig(n)
	window := cfg.Window()
	opts := integrate.DefaultOptions()
	// Pinned horizon: appended rounds must not move the open-interval end.
	opts.OpenIntervalEnd = window.End.AddDays(30)

	freshWB := func(b *testing.B) *core.Workbench {
		b.Helper()
		wb, err := core.FromBundle(synth.Generate(cfg), opts, window)
		if err != nil {
			b.Fatal(err)
		}
		wb.IngestOptions = &opts
		return wb
	}
	q := query.And{
		query.Has{Pred: query.TypeIs(model.TypeDiagnosis)},
		query.Has{Pred: query.MustCode("ICPC2", "T90|K86")},
	}
	measure := func(b *testing.B, wb *core.Workbench) {
		lat := make([]time.Duration, 0, b.N)
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := wb.Query(q); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		reportPercentiles(b, lat)
	}

	b.Run("quiescent", func(b *testing.B) {
		wb := freshWB(b)
		if _, err := wb.Query(q); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		measure(b, wb)
	})

	b.Run("under-ingest", func(b *testing.B) {
		wb := freshWB(b)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			nextNew := uint64(n) + 1
			for round := 1; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				feed := synth.GenerateAppend(cfg, nextNew, nextNew+49, round)
				nextNew += 50
				if err := wb.Append(feed); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.ResetTimer()
		measure(b, wb)
		close(stop)
		wg.Wait()
		st, _ := wb.IngestStats()
		b.ReportMetric(float64(st.Batches), "appends")
	})

	b.Run("recovered-after-compaction", func(b *testing.B) {
		wb := freshWB(b)
		nextNew := uint64(n) + 1
		for round := 1; round <= 5; round++ {
			feed := synth.GenerateAppend(cfg, nextNew, nextNew+49, round)
			nextNew += 50
			if err := wb.Append(feed); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := wb.Compact(); err != nil {
			b.Fatal(err)
		}
		if _, err := wb.Query(q); err != nil { // warm at the final generation
			b.Fatal(err)
		}
		b.ResetTimer()
		measure(b, wb)
	})
}

// BenchmarkE15_RefineLoop prices the cohort-workspace tentpole: the
// explore loop as O(delta) instead of O(population). A 5%-selective
// parent cohort is materialized once over the E12 million-patient
// population; the refined expression adds one more conjunct. The
// from-scratch arm re-executes the whole conjunction (caches reset
// every iteration — the pre-workspace explore loop); the refine arm
// seeds from the cached parent and executes only the delta, masked.
// The remote arms contrast the two distribution strategies for the
// same refinement: pull-leaves ships every shard's full delta leaf to
// the coordinator and intersects there; pushed-mask ships the parent
// mask down (container-encoded, crc-checked) so each shard evaluates
// the delta over candidates only. All results are parity-checked
// against each other every iteration.
func BenchmarkE15_RefineLoop(b *testing.B) {
	st := e12Store(b)
	n := e12Scale()
	vb := func(lo, hi float64) query.Expr {
		return query.Has{Pred: query.ValueBetween{Lo: lo, Hi: hi}}
	}
	parent := vb(90, 94)    // 5% of the population
	delta := vb(1000, 1039) // 40% band on the decorrelated cycle
	refined := query.And{parent, delta}
	want := n / 100 * 2 // the two residues of the joint cycle
	check := func(b *testing.B, bits *store.Bitset, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if bits.Count() != want {
			b.Fatalf("refined cohort drifted: %d, want %d", bits.Count(), want)
		}
	}
	ctx := context.Background()

	eng := engine.New(st, engine.Options{Shards: engine.DefaultOptions().Shards, CacheSize: 0})
	b.Run("from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.ResetCache()
			bits, err := eng.Execute(refined)
			check(b, bits, err)
		}
	})
	b.Run("refine", func(b *testing.B) {
		eng.ResetCache()
		if _, err := eng.Materialize(ctx, "parent", parent); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			info, ref, err := eng.Refine(ctx, "r", refined)
			if err != nil {
				b.Fatal(err)
			}
			if ref.Mode != engine.RefineNarrow {
				b.Fatalf("refine mode %q, want narrow", ref.Mode)
			}
			if info.Count != want {
				b.Fatalf("refined cohort drifted: %d, want %d", info.Count, want)
			}
		}
	})

	// Distributed: the same refinement over two loopback shard servers.
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	wb := core.FromCollection(st.Collection(), window)
	coordOpts := engine.DefaultOptions()
	coordOpts.CacheSize = 0
	remote, _ := startBenchClusterOpts(b, wb, coordOpts)
	if _, err := remote.Engine.Materialize(ctx, "parent", parent); err != nil {
		b.Fatal(err)
	}
	parentBits, _, err := remote.Engine.CohortBits("parent")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("remote-pull-leaves", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The pre-push-down strategy: evaluate the delta unmasked (every
			// shard ships its full leaf) and intersect at the coordinator.
			leaf, err := remote.Engine.Execute(delta)
			if err != nil {
				b.Fatal(err)
			}
			acc := parentBits.Clone()
			acc.And(leaf)
			check(b, acc, nil)
		}
	})
	b.Run("remote-pushed-mask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			info, ref, err := remote.Engine.Refine(ctx, "r", refined)
			if err != nil {
				b.Fatal(err)
			}
			if ref.Mode != engine.RefineNarrow || !ref.Pushed {
				b.Fatalf("refinement %+v, want pushed narrow", ref)
			}
			if info.Count != want {
				b.Fatalf("refined cohort drifted: %d, want %d", info.Count, want)
			}
		}
	})
}

// BenchmarkE16_DistributedMining prices the analytics tentpole: mining
// chapter-level co-occurrence rules over a whole-population cohort,
// (a) in-process — the local map-reduce over store slices, (b) remote
// with the pre-Analyze strategy — every cohort history shipped to the
// coordinator and mined there, and (c) remote map-reduce — only the
// pushed-down mask and fixed-size integer partials cross the wire. All
// arms are parity-checked against each other; (c) beating (b) is the
// acceptance bar for distributing the analytics tier.
func BenchmarkE16_DistributedMining(b *testing.B) {
	n := 21000
	if testing.Short() {
		n = 5000
	}
	wb := workbenchAt(b, n)
	remote, _ := startBenchCluster(b, wb)
	cohortExpr := query.Expr(query.Has{Pred: query.TypeIs(model.TypeDiagnosis)})
	if _, err := wb.SaveCohort("e16", cohortExpr); err != nil {
		b.Fatal(err)
	}
	if _, err := remote.SaveCohort("e16", cohortExpr); err != nil {
		b.Fatal(err)
	}
	params := engine.MineParams{System: "ICPC2", Chapter: true}
	opt := mining.Options{MinSupport: 0.01, MinCount: 2}
	want, _, _, err := wb.MineRules("e16", params, opt)
	if err != nil {
		b.Fatal(err)
	}
	if len(want) == 0 {
		b.Fatal("no rules over the benchmark population")
	}
	checkRules := func(b *testing.B, got []mining.Rule) {
		b.Helper()
		if len(got) != len(want) || got[0] != want[0] {
			b.Fatalf("mined rules diverged: %d rules, want %d", len(got), len(want))
		}
	}

	b.Run("local-map-reduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rules, _, _, err := wb.MineRules("e16", params, opt)
			if err != nil {
				b.Fatal(err)
			}
			checkRules(b, rules)
		}
	})

	b.Run("remote-ship-histories", func(b *testing.B) {
		bits, _, err := remote.Engine.CohortBits("e16")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-Analyze strategy: page every cohort history across
			// the wire and count at the coordinator.
			hs, err := remote.Engine.Histories(bits)
			if err != nil {
				b.Fatal(err)
			}
			c := mining.NewCounts(false, 0)
			for _, h := range hs {
				var seq []string
				for _, code := range h.CodeSequenceStable(model.TypeDiagnosis) {
					if code.System != "ICPC2" {
						continue
					}
					if ch := abstraction.ChapterOf(code); ch != "" {
						seq = append(seq, ch)
					}
				}
				if len(seq) > 0 {
					c.AddSequence(seq)
				}
			}
			checkRules(b, c.Rules(opt))
		}
	})

	b.Run("remote-map-reduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rules, _, _, err := remote.MineRules("e16", params, opt)
			if err != nil {
				b.Fatal(err)
			}
			checkRules(b, rules)
		}
	})
}
